//! `archpredict-served` — the prediction daemon (see `archpredict::serve`).
//!
//! Binds an HTTP/1.1 listener over a model registry and serves `/fit`
//! and `/predict` until `POST /shutdown`. The first stdout line is
//! always `archpredict-served listening on <addr>` so wrappers (the
//! load generator, the CI smoke gate) can bind port 0 and scrape the
//! concrete address.
//!
//! ```text
//! archpredict-served [--addr 127.0.0.1:0] [--root results/registry] [--tick-ms 1]
//!                    [--max-connections 64] [--max-models 32]
//! ```

use archpredict::serve::{ServeConfig, Server};
use std::process::ExitCode;
use std::time::Duration;

fn run() -> Result<(), String> {
    let mut config = ServeConfig::default();
    let mut addr = String::from("127.0.0.1:0");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr")?,
            "--root" => config.registry_root = value("--root")?.into(),
            "--tick-ms" => {
                let ms: u64 = value("--tick-ms")?
                    .parse()
                    .map_err(|_| "--tick-ms requires an integer".to_owned())?;
                config.tick = Duration::from_millis(ms);
            }
            "--max-connections" => {
                config.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|_| "--max-connections requires an integer".to_owned())?;
            }
            "--max-models" => {
                config.max_models = value("--max-models")?
                    .parse()
                    .map_err(|_| "--max-models requires an integer".to_owned())?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: archpredict-served [--addr HOST:PORT] [--root DIR] [--tick-ms N] \
                     [--max-connections N] [--max-models N]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    let server = Server::bind(addr.as_str(), config).map_err(|e| format!("bind {addr}: {e}"))?;
    // Contract with wrappers: the address line is first, and flushed.
    println!("archpredict-served listening on {}", server.local_addr());
    use std::io::Write;
    std::io::stdout().flush().ok();
    server.run().map_err(|e| format!("serve: {e}"))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("archpredict-served: {message}");
            ExitCode::FAILURE
        }
    }
}
