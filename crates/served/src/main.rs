//! `archpredict-served` — the prediction daemon (see `archpredict::serve`).
//!
//! Binds an HTTP/1.1 listener over a model registry and serves `/fit`
//! and `/predict` until `POST /shutdown`, SIGTERM, or SIGINT — all three
//! trigger the same graceful drain (close the listener, finish in-flight
//! work under `--drain-ms`, flush final stats to stderr). The first
//! stdout line is always `archpredict-served listening on <addr>` so
//! wrappers (the load generator, the chaos harness, the CI smoke gate)
//! can bind port 0 and scrape the concrete address.
//!
//! Setting `ARCHPREDICT_FAILPOINTS` enrolls the daemon in a
//! deterministic chaos schedule (see `archpredict::failpoint`); a
//! malformed plan is a fatal startup error, never a silently unfaulted
//! run.
//!
//! ```text
//! archpredict-served [--addr 127.0.0.1:0] [--root results/registry] [--tick-ms 1]
//!                    [--max-connections 64] [--max-models 32]
//!                    [--gate-wait-ms 2000] [--drain-ms 30000]
//! ```

use archpredict::failpoint;
use archpredict::serve::{install_signal_handlers, ServeConfig, Server};
use archpredict::telemetry;
use std::process::ExitCode;
use std::time::Duration;

fn run() -> Result<(), String> {
    let mut config = ServeConfig::default();
    let mut addr = String::from("127.0.0.1:0");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let millis = |name: &str, text: String| -> Result<Duration, String> {
            text.parse()
                .map(Duration::from_millis)
                .map_err(|_| format!("{name} requires an integer millisecond count"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr")?,
            "--root" => config.registry_root = value("--root")?.into(),
            "--tick-ms" => config.tick = millis("--tick-ms", value("--tick-ms")?)?,
            "--max-connections" => {
                config.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|_| "--max-connections requires an integer".to_owned())?;
            }
            "--max-models" => {
                config.max_models = value("--max-models")?
                    .parse()
                    .map_err(|_| "--max-models requires an integer".to_owned())?;
            }
            "--gate-wait-ms" => {
                config.gate_wait = millis("--gate-wait-ms", value("--gate-wait-ms")?)?;
            }
            "--drain-ms" => {
                config.drain_deadline = millis("--drain-ms", value("--drain-ms")?)?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: archpredict-served [--addr HOST:PORT] [--root DIR] [--tick-ms N] \
                     [--max-connections N] [--max-models N] [--gate-wait-ms N] [--drain-ms N]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if failpoint::install_from_env().map_err(|e| format!("failpoints: {e}"))? {
        eprintln!("archpredict-served: failpoint schedule installed from environment");
    }
    if telemetry::install_trace_from_env().map_err(|e| format!("trace sink: {e}"))? {
        eprintln!(
            "archpredict-served: trace events -> {}",
            telemetry::trace_path().unwrap_or_default().display()
        );
    }
    install_signal_handlers();
    let server = Server::bind(addr.as_str(), config).map_err(|e| format!("bind {addr}: {e}"))?;
    // Contract with wrappers: the address line is first, and flushed.
    println!("archpredict-served listening on {}", server.local_addr());
    use std::io::Write;
    std::io::stdout().flush().ok();
    server.run().map_err(|e| format!("serve: {e}"))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("archpredict-served: {message}");
            ExitCode::FAILURE
        }
    }
}
