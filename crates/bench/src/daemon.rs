//! Daemon-spawning harness shared by the load generator, the chaos
//! harness, and the CI smoke gates: locate the real `archpredict-served`
//! binary, spawn it on an ephemeral (or pinned) port, scrape the
//! address line it prints, and guarantee the child never outlives the
//! harness — a panicking run kills the daemon on drop.
//!
//! The one protocol this module depends on is the daemon's stdout
//! contract: the first line is always
//! `archpredict-served listening on <addr>`, flushed before anything
//! else, so wrappers can bind `127.0.0.1:0` and learn the concrete port.
//! The address line says the listener exists; it does not say the daemon
//! will accept work, so [`Daemon::spawn`] additionally blocks on the
//! `GET /ready` probe — the same endpoint a load balancer would watch —
//! before handing the child to the harness.

use archpredict::failpoint::ENV_FAILPOINTS;
use archpredict::serve::http_request;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

/// How long [`Daemon::spawn`] waits for the readiness probe to pass.
/// Generous because CI machines can be slow to schedule the child, but
/// chaos schedules (a handler failpoint can 500 a few probes) still fit
/// comfortably inside it.
const READY_DEADLINE: Duration = Duration::from_secs(30);

/// Environment override for the daemon binary's location.
pub const ENV_SERVED_BIN: &str = "ARCHPREDICT_SERVED_BIN";

/// Finds `archpredict-served` like the distributed oracle finds its
/// worker: env override, then next to the current executable, then one
/// directory up (bench binaries live in `target/<profile>/`).
///
/// # Errors
///
/// When the override points nowhere or no candidate exists — the message
/// says how to build or point at the binary.
pub fn locate_served_binary() -> Result<PathBuf, String> {
    if let Ok(path) = std::env::var(ENV_SERVED_BIN) {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Ok(path);
        }
        return Err(format!(
            "{ENV_SERVED_BIN} points at {}, which does not exist",
            path.display()
        ));
    }
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let mut dir = exe.parent();
    for _ in 0..2 {
        if let Some(d) = dir {
            let candidate = d.join("archpredict-served");
            if candidate.is_file() {
                return Ok(candidate);
            }
            dir = d.parent();
        }
    }
    Err(
        "archpredict-served binary not found: build it with `cargo build -p \
         archpredict-served` or set ARCHPREDICT_SERVED_BIN"
            .into(),
    )
}

/// A running `archpredict-served` child: its scraped address, signal
/// delivery, and kill-on-drop cleanup so no run leaks a daemon.
pub struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    /// Spawns the daemon at `bin` with `args` (the harness supplies
    /// `--addr`, `--root`, …), blocks until it prints its address line,
    /// and returns the running child.
    ///
    /// `failpoints` is the child's chaos schedule: `Some(plan)` sets
    /// `ARCHPREDICT_FAILPOINTS` on the child, `None` scrubs any
    /// inherited value so a "clean" daemon is actually clean.
    ///
    /// # Errors
    ///
    /// On spawn failure or a child that dies before printing its
    /// address (e.g. a bind failure on a pinned port).
    pub fn spawn(bin: &PathBuf, args: &[String], failpoints: Option<&str>) -> Result<Self, String> {
        let mut command = Command::new(bin);
        command.args(args).stdout(Stdio::piped());
        match failpoints {
            Some(plan) => {
                command.env(ENV_FAILPOINTS, plan);
            }
            None => {
                command.env_remove(ENV_FAILPOINTS);
            }
        }
        let mut child = command
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
        let stdout = child.stdout.take().expect("piped stdout");
        let mut first_line = String::new();
        if BufReader::new(stdout).read_line(&mut first_line).is_err() || first_line.is_empty() {
            let _ = child.kill();
            let _ = child.wait();
            return Err("daemon exited before printing its address line".into());
        }
        let addr: SocketAddr = match first_line.trim().rsplit(' ').next().map(str::parse) {
            Some(Ok(addr)) => addr,
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(format!("unparsable daemon address line {first_line:?}"));
            }
        };
        let daemon = Daemon { child, addr };
        // Readiness, not liveness: the listener existing is not the same
        // as the daemon accepting work. A spawn that cannot pass `/ready`
        // is dead on arrival for every harness, so fail it here (the
        // `Daemon` drop kills the child).
        daemon.wait_ready(READY_DEADLINE)?;
        Ok(daemon)
    }

    /// Polls `GET /ready` until the daemon reports itself ready to accept
    /// work (200 with `"ready": true`), or `deadline` elapses. See
    /// [`wait_ready`].
    ///
    /// # Errors
    ///
    /// When the deadline passes without a ready answer; the message
    /// carries the last observed probe outcome.
    pub fn wait_ready(&self, deadline: Duration) -> Result<(), String> {
        wait_ready(self.addr, deadline)
    }

    /// The daemon's bound address, scraped from its first stdout line.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's process id (for external signal delivery).
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Delivers `signal` (`"TERM"`, `"KILL"`, …) via `/usr/bin/kill`,
    /// the same way an init system or an operator would.
    ///
    /// # Errors
    ///
    /// When the kill command cannot run or reports failure.
    pub fn signal(&self, signal: &str) -> Result<(), String> {
        let status = Command::new("/usr/bin/kill")
            .args([format!("-{signal}"), self.pid().to_string()])
            .status()
            .map_err(|e| format!("run kill: {e}"))?;
        if status.success() {
            Ok(())
        } else {
            Err(format!("kill -{signal} {} failed", self.pid()))
        }
    }

    /// Waits for the daemon to exit and reaps it. Safe to call after
    /// the child already died (the status is cached by the OS/std).
    ///
    /// # Errors
    ///
    /// On an OS-level wait failure.
    pub fn wait(&mut self) -> std::io::Result<ExitStatus> {
        self.child.wait()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Polls `GET /ready` at `addr` until the daemon reports itself ready to
/// accept work (200 with `"ready": true`), or `deadline` elapses.
///
/// Transient failures — connection refused during startup, a 500 from an
/// armed handler failpoint — are retried; only the deadline is fatal. A
/// draining daemon answers 503 forever, so a harness waiting on one fails
/// here instead of hanging on its first real request. This is the one
/// readiness wait every harness shares; none of them poll `/health`,
/// which stays 200 on a daemon that will never take their work.
///
/// # Errors
///
/// When the deadline passes without a ready answer; the message carries
/// the last observed probe outcome.
pub fn wait_ready(addr: SocketAddr, deadline: Duration) -> Result<(), String> {
    let give_up = Instant::now() + deadline;
    let mut last: String;
    loop {
        match http_request(addr, "GET", "/ready", None) {
            Ok((200, body)) if matches!(body.get("ready").and_then(|v| v.as_bool()), Ok(true)) => {
                return Ok(());
            }
            Ok((status, _)) => last = format!("last probe answered {status}"),
            Err(e) => last = format!("last probe failed: {e}"),
        }
        if Instant::now() >= give_up {
            return Err(format!(
                "daemon at {addr} not ready after {deadline:?} ({last})"
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    /// Answers every connection at the returned address with `status` and
    /// `body` until the listener is dropped with the thread.
    fn fake_daemon(status: &'static str, body: &'static str) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake daemon");
        let addr = listener.local_addr().expect("local addr");
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                let mut buf = [0u8; 1024];
                let _ = stream.read(&mut buf);
                let response = format!(
                    "HTTP/1.1 {status}\r\nContent-Type: application/json\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                );
                let _ = stream.write_all(response.as_bytes());
            }
        });
        addr
    }

    #[test]
    fn ready_wait_passes_a_ready_daemon() {
        let addr = fake_daemon("200 OK", r#"{"ok":true,"ready":true,"draining":false}"#);
        wait_ready(addr, Duration::from_secs(5)).expect("ready daemon passes the wait");
    }

    /// Regression for the `/health` -> `/ready` switch: a draining daemon
    /// is alive (its `/health` would answer 200) but answers `/ready`
    /// with 503, and the readiness wait must reject it instead of handing
    /// it to a harness.
    #[test]
    fn ready_wait_rejects_a_draining_daemon() {
        let addr = fake_daemon(
            "503 Service Unavailable",
            r#"{"ok":false,"error":"draining; not accepting new work"}"#,
        );
        let err = wait_ready(addr, Duration::from_millis(200))
            .expect_err("draining daemon must fail the wait");
        assert!(err.contains("503"), "error should carry the probe: {err}");
    }

    #[test]
    fn ready_wait_requires_the_ready_flag_not_just_a_200() {
        // A liveness-style answer (200 without `ready: true`) must not
        // satisfy a readiness wait.
        let addr = fake_daemon("200 OK", r#"{"ok":true,"ready":false,"draining":true}"#);
        wait_ready(addr, Duration::from_millis(200))
            .expect_err("200 with ready=false must fail the wait");
    }
}
