//! Daemon-spawning harness shared by the load generator, the chaos
//! harness, and the CI smoke gates: locate the real `archpredict-served`
//! binary, spawn it on an ephemeral (or pinned) port, scrape the
//! address line it prints, and guarantee the child never outlives the
//! harness — a panicking run kills the daemon on drop.
//!
//! The one protocol this module depends on is the daemon's stdout
//! contract: the first line is always
//! `archpredict-served listening on <addr>`, flushed before anything
//! else, so wrappers can bind `127.0.0.1:0` and learn the concrete port.

use archpredict::failpoint::ENV_FAILPOINTS;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};

/// Environment override for the daemon binary's location.
pub const ENV_SERVED_BIN: &str = "ARCHPREDICT_SERVED_BIN";

/// Finds `archpredict-served` like the distributed oracle finds its
/// worker: env override, then next to the current executable, then one
/// directory up (bench binaries live in `target/<profile>/`).
///
/// # Errors
///
/// When the override points nowhere or no candidate exists — the message
/// says how to build or point at the binary.
pub fn locate_served_binary() -> Result<PathBuf, String> {
    if let Ok(path) = std::env::var(ENV_SERVED_BIN) {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Ok(path);
        }
        return Err(format!(
            "{ENV_SERVED_BIN} points at {}, which does not exist",
            path.display()
        ));
    }
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let mut dir = exe.parent();
    for _ in 0..2 {
        if let Some(d) = dir {
            let candidate = d.join("archpredict-served");
            if candidate.is_file() {
                return Ok(candidate);
            }
            dir = d.parent();
        }
    }
    Err(
        "archpredict-served binary not found: build it with `cargo build -p \
         archpredict-served` or set ARCHPREDICT_SERVED_BIN"
            .into(),
    )
}

/// A running `archpredict-served` child: its scraped address, signal
/// delivery, and kill-on-drop cleanup so no run leaks a daemon.
pub struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    /// Spawns the daemon at `bin` with `args` (the harness supplies
    /// `--addr`, `--root`, …), blocks until it prints its address line,
    /// and returns the running child.
    ///
    /// `failpoints` is the child's chaos schedule: `Some(plan)` sets
    /// `ARCHPREDICT_FAILPOINTS` on the child, `None` scrubs any
    /// inherited value so a "clean" daemon is actually clean.
    ///
    /// # Errors
    ///
    /// On spawn failure or a child that dies before printing its
    /// address (e.g. a bind failure on a pinned port).
    pub fn spawn(bin: &PathBuf, args: &[String], failpoints: Option<&str>) -> Result<Self, String> {
        let mut command = Command::new(bin);
        command.args(args).stdout(Stdio::piped());
        match failpoints {
            Some(plan) => {
                command.env(ENV_FAILPOINTS, plan);
            }
            None => {
                command.env_remove(ENV_FAILPOINTS);
            }
        }
        let mut child = command
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
        let stdout = child.stdout.take().expect("piped stdout");
        let mut first_line = String::new();
        if BufReader::new(stdout).read_line(&mut first_line).is_err() || first_line.is_empty() {
            let _ = child.kill();
            let _ = child.wait();
            return Err("daemon exited before printing its address line".into());
        }
        let addr: SocketAddr = match first_line.trim().rsplit(' ').next().map(str::parse) {
            Some(Ok(addr)) => addr,
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(format!("unparsable daemon address line {first_line:?}"));
            }
        };
        Ok(Daemon { child, addr })
    }

    /// The daemon's bound address, scraped from its first stdout line.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's process id (for external signal delivery).
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Delivers `signal` (`"TERM"`, `"KILL"`, …) via `/usr/bin/kill`,
    /// the same way an init system or an operator would.
    ///
    /// # Errors
    ///
    /// When the kill command cannot run or reports failure.
    pub fn signal(&self, signal: &str) -> Result<(), String> {
        let status = Command::new("/usr/bin/kill")
            .args([format!("-{signal}"), self.pid().to_string()])
            .status()
            .map_err(|e| format!("run kill: {e}"))?;
        if status.success() {
            Ok(())
        } else {
            Err(format!("kill -{signal} {} failed", self.pid()))
        }
    }

    /// Waits for the daemon to exit and reaps it. Safe to call after
    /// the child already died (the status is cached by the OS/std).
    ///
    /// # Errors
    ///
    /// On an OS-level wait failure.
    pub fn wait(&mut self) -> std::io::Result<ExitStatus> {
        self.child.wait()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}
