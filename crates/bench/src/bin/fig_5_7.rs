//! Figure 5.7: decomposition of the total gains into SimPoint's
//! per-simulation reduction and ANN modeling's fewer-simulations
//! reduction; the combined factor is their product.

use archpredict::studies::Study;
use archpredict_bench::{reduction_analysis, run_curves, ExperimentOpts};
use archpredict_workloads::Benchmark;

fn main() {
    let opts = ExperimentOpts::from_args(&Benchmark::FEATURED);
    let registry = opts.registry();
    let targets = [1.0, 2.0, 3.5];
    let curves: Vec<_> = opts
        .apps
        .iter()
        .map(|&b| opts.curve(Study::Processor, b).with_simpoint(true))
        .collect();
    let mut csv = String::from("app,achieved_error,factor_simpoint,factor_ann,factor_combined\n");
    for result in run_curves(&registry, &curves) {
        println!("{}", result.curve.label);
        println!(
            "  {:>10} | {:>9} {:>7} {:>10}",
            "error", "SimPointx", "ANNx", "combinedx"
        );
        for row in reduction_analysis(&result, &targets) {
            println!(
                "  {:>9.2}% | {:>9.1} {:>7.1} {:>10.1}",
                row.achieved_error, row.simpoint_factor, row.ann_factor, row.combined_factor
            );
            assert!(
                (row.combined_factor - row.simpoint_factor * row.ann_factor).abs() < 1e-6,
                "decomposition must be multiplicative"
            );
            csv.push_str(&format!(
                "{},{:.3},{:.2},{:.2},{:.2}\n",
                row.app,
                row.achieved_error,
                row.simpoint_factor,
                row.ann_factor,
                row.combined_factor
            ));
        }
        println!();
    }
    archpredict_bench::runner::write_artifact(&opts.out_path("fig_5_7.csv"), &csv);
}
