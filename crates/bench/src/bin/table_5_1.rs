//! Table 5.1: true and estimated mean/SD of percentage error at roughly
//! 1 %, 2 %, and 4 % training samples, for both studies and all requested
//! applications.

use archpredict::studies::Study;
use archpredict_bench::{run_curves, ExperimentOpts};
use archpredict_workloads::Benchmark;

fn main() {
    let opts = ExperimentOpts::from_args(&Benchmark::ALL);
    let registry = opts.registry();
    let mut csv = String::from("study,app,percent_sampled,true_mean,est_mean,true_sd,est_sd\n");
    for study in Study::ALL {
        let space_size = study.space().size();
        // The paper's sampled fractions: ~1%, ~2%, ~4% of each space.
        let fractions = [0.01, 0.02, 0.041];
        let targets: Vec<usize> = fractions
            .iter()
            .map(|f| {
                (((f * space_size as f64) / opts.batch as f64).round() as usize).max(1) * opts.batch
            })
            .collect();
        let max_samples = *targets.last().expect("targets");
        println!("\n================ {} study ================", study.name());
        println!(
            "{:8} {:>7} | {:>9} {:>9} | {:>9} {:>9}",
            "app", "%space", "true mean", "est mean", "true sd", "est sd"
        );
        let curves: Vec<_> = opts
            .apps
            .iter()
            .map(|&b| opts.curve(study, b).with_max_samples(max_samples))
            .collect();
        for (result, &benchmark) in run_curves(&registry, &curves).iter().zip(&opts.apps) {
            for &target in &targets {
                let Some(row) = result.curve.points.iter().find(|p| p.samples >= target) else {
                    continue;
                };
                println!(
                    "{:8} {:>6.2}% | {:>8.2}% {:>8.2}% | {:>8.2}% {:>8.2}%",
                    benchmark.name(),
                    row.percent_sampled,
                    row.true_mean.unwrap_or(f64::NAN),
                    row.estimated_mean,
                    row.true_std_dev.unwrap_or(f64::NAN),
                    row.estimated_std_dev,
                );
                csv.push_str(&format!(
                    "{},{},{:.3},{:.3},{:.3},{:.3},{:.3}\n",
                    study.name(),
                    benchmark.name(),
                    row.percent_sampled,
                    row.true_mean.unwrap_or(f64::NAN),
                    row.estimated_mean,
                    row.true_std_dev.unwrap_or(f64::NAN),
                    row.estimated_std_dev,
                ));
            }
        }
    }
    archpredict_bench::runner::write_artifact(&opts.out_path("table_5_1.csv"), &csv);
}
