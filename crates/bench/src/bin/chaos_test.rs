//! End-to-end chaos harness for the serving stack: drives the real
//! `archpredict-served` daemon and real `archpredict-worker` processes
//! under concurrent fit/predict load while a **seeded** disruption
//! schedule SIGTERMs the daemon mid-flight, SIGKILLs it outright,
//! injects registry/persist I/O faults through the failpoint layer, and
//! kills pool workers mid-span — then proves the stack healed:
//!
//! * every accepted request was answered or cleanly shed (clients retry
//!   to completion; none time out),
//! * a SIGTERM'd daemon always exits 0 (graceful drain), a SIGKILL'd
//!   one never does,
//! * the post-chaos registry holds zero torn temps or orphaned lease
//!   files, and every surviving artifact passes its content-hash check,
//! * the chaos-fitted model artifact is **byte-identical** to a
//!   clean-room in-process fit of the same spec, and post-chaos served
//!   predictions are **bit-identical** to local inference on that
//!   clean-room model.
//!
//! Every disruption decision flows from `--seed` (daemon failpoint
//! schedules, worker kill schedules, round kinds, kill timing), so a
//! failing run replays exactly.
//!
//! ```text
//! cargo run --release --bin chaos_test -- [--rounds 20] [--clients 4]
//!     [--requests 6] [--budget 12] [--seed 0xC4A05] [--output-json]
//!     [--keep-root]
//! ```

use archpredict::campaign::CampaignConfig;
use archpredict::distributed::{
    locate_worker_binary, ProcessPoolOracle, WorkerSpec, FP_WORKER_EVAL,
};
use archpredict::failpoint::{render_plan, FailAction, SiteSpec, ENV_FAILPOINTS};
use archpredict::infer;
use archpredict::persist::FP_WRITE_ATOMIC;
use archpredict::registry::{Registry, StudyFitSpec, FP_COMMIT_ENTRY, FP_COMMIT_OBJECT};
use archpredict::serve::{http_request, FP_HANDLER};
use archpredict::simulate::{Oracle, RetryPolicy, RetryingOracle, SimStats};
use archpredict::studies::Study;
use archpredict::telemetry::Counter;
use archpredict_ann::Parallelism;
use archpredict_bench::{locate_served_binary, write_artifact, Daemon};
use archpredict_stats::rng::Xoshiro256;
use archpredict_workloads::Benchmark;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// No request is in flight longer than this before the harness declares
/// the stack wedged; generous because a SIGKILL mid-fit forces a full
/// refit on the restarted daemon.
const CLIENT_DEADLINE: Duration = Duration::from_secs(180);

/// One round's disruption.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Disruption {
    /// No process-level disruption: pure load under the failpoint plan.
    LoadOnly,
    /// SIGTERM the daemon mid-round, assert exit 0, restart it.
    Sigterm,
    /// SIGKILL the daemon mid-round (never exit 0), restart it.
    Sigkill,
}

impl Disruption {
    fn label(self) -> &'static str {
        match self {
            Disruption::LoadOnly => "load",
            Disruption::Sigterm => "sigterm",
            Disruption::Sigkill => "sigkill",
        }
    }
}

/// Per-spec request bodies plus the clean-room reference the chaos run
/// must reproduce byte- and bit-identically.
struct SpecRef {
    spec: StudyFitSpec,
    fit_body: String,
    predict_body: String,
    /// `to_json_fingerprinted` bytes of the clean-room model.
    reference_json: String,
    /// Probe indices and the clean-room model's predictions for them.
    probe: Vec<usize>,
    local: Vec<f64>,
}

/// Counters shared by the client threads of one round (and summed into
/// run totals): the evidence that every request was answered or shed.
struct RoundCounters {
    ok: Counter,
    retried: Counter,
    shed: Counter,
    refits: Counter,
}

impl Default for RoundCounters {
    fn default() -> Self {
        Self {
            ok: Counter::new("chaos.ok"),
            retried: Counter::new("chaos.retried"),
            shed: Counter::new("chaos.shed"),
            refits: Counter::new("chaos.refits"),
        }
    }
}

/// The daemon's current address; disruption rounds replace the daemon,
/// so clients re-read this on every attempt.
struct AddrCell(Mutex<SocketAddr>);

impl AddrCell {
    fn get(&self) -> SocketAddr {
        *self.0.lock().expect("addr cell")
    }
    fn set(&self, addr: SocketAddr) {
        *self.0.lock().expect("addr cell") = addr;
    }
}

fn main() {
    let mut rounds = 20usize;
    let mut clients = 4usize;
    let mut requests = 6usize;
    let mut budget = 12usize;
    let mut seed = 0xC4A05u64;
    let mut output_json = false;
    let mut keep_root = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("flag {name} needs a value"))
        };
        match arg.as_str() {
            "--rounds" => rounds = value("--rounds").parse().expect("number"),
            "--clients" => clients = value("--clients").parse().expect("number"),
            "--requests" => requests = value("--requests").parse().expect("number"),
            "--budget" => budget = value("--budget").parse().expect("number"),
            "--seed" => {
                let text = value("--seed");
                let text = text.trim();
                seed = match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16).expect("hex seed"),
                    None => text.parse().expect("seed"),
                };
            }
            "--output-json" => output_json = true,
            "--keep-root" => keep_root = true,
            other => panic!("unknown flag {other}"),
        }
    }

    let scratch = std::env::temp_dir().join(format!("archpredict-chaos-{}", std::process::id()));
    let registry_root = scratch.join("registry");
    let clean_root = scratch.join("cleanroom");
    let _ = std::fs::remove_dir_all(&scratch);

    // ---- Clean-room references: fit both specs in-process, undisturbed.
    let batch = budget.div_ceil(2);
    let make_spec = |study: Study, benchmark: Benchmark| StudyFitSpec {
        study,
        benchmark,
        config: CampaignConfig {
            seed,
            max_samples: budget,
            batch,
            ..CampaignConfig::default()
        },
        quick: true,
    };
    let specs = [
        make_spec(Study::MemorySystem, Benchmark::Gzip),
        make_spec(Study::Processor, Benchmark::Mcf),
    ];
    eprintln!("chaos_test: fitting clean-room references (budget {budget}, seed {seed:#x})");
    let clean_registry = Registry::open(&clean_root).expect("open clean-room registry");
    let refs: Vec<SpecRef> = specs
        .iter()
        .map(|spec| {
            let outcome = clean_registry
                .get_or_fit_study(spec)
                .expect("clean-room fit");
            let space = spec.study.space();
            let stride = (space.size() / 32).max(1);
            let probe: Vec<usize> = (0..32).map(|i| (i * stride) % space.size()).collect();
            let local = infer::predict_indices(&outcome.model, &space, &probe, Parallelism::Auto);
            let indices_json = probe
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(",");
            let head = format!(
                r#""study":"{}","app":"{}","seed":"{seed:x}","budget":{budget},"batch":{batch},"quick":true"#,
                spec.study.name(),
                spec.benchmark.name()
            );
            SpecRef {
                reference_json: outcome.model.to_json_fingerprinted(spec.fingerprint()),
                fit_body: format!("{{{head}}}"),
                predict_body: format!("{{{head},\"indices\":[{indices_json}]}}"),
                probe,
                local,
                spec: spec.clone(),
            }
        })
        .collect();

    // ---- Phase 1: worker-pool chaos (seeded mid-span worker deaths).
    let worker_respawns = worker_chaos_phase(seed);

    // ---- Phase 2: daemon chaos rounds.
    let bin = ensure_served_binary();
    let plan = render_plan(
        seed,
        &[
            (FP_WRITE_ATOMIC, site(FailAction::Torn, 0.05, None)),
            (FP_COMMIT_OBJECT, site(FailAction::Error, 0.10, Some(4))),
            (FP_COMMIT_ENTRY, site(FailAction::Error, 0.10, Some(4))),
            (FP_HANDLER, site(FailAction::Error, 0.02, None)),
        ],
    );
    eprintln!("chaos_test: daemon failpoint plan {plan}");
    let mut daemon =
        Daemon::spawn(&bin, &daemon_args(&registry_root), Some(&plan)).expect("spawn daemon");
    let addr = AddrCell(Mutex::new(daemon.addr()));
    eprintln!(
        "chaos_test: daemon at {} (root {})",
        daemon.addr(),
        registry_root.display()
    );

    // Warm both models through the chaotic daemon before the kill rounds
    // begin, so most rounds exercise the hot predict path.
    let warm_counters = RoundCounters::default();
    for spec_ref in &refs {
        fit_until_ok(&addr, spec_ref, &warm_counters);
    }

    let mut rng = Xoshiro256::seed_from(seed).derive(0xD150);
    let mut rows: Vec<(usize, &'static str, u64, u64, u64, u64, f64)> = Vec::new();
    let totals = RoundCounters::default();
    let (mut sigterms, mut sigkills) = (0usize, 0usize);
    for round in 0..rounds {
        // Cycle guarantees coverage of all three kinds regardless of
        // seed; every fourth round's kind (and every kill delay) is
        // drawn from the seeded stream.
        let kind = match round % 4 {
            0 => Disruption::LoadOnly,
            1 => Disruption::Sigterm,
            2 => Disruption::Sigkill,
            _ => match (rng.next_f64() * 3.0) as u32 {
                0 => Disruption::LoadOnly,
                1 => Disruption::Sigterm,
                _ => Disruption::Sigkill,
            },
        };
        let delay = Duration::from_millis(20 + (rng.next_f64() * 120.0) as u64);
        let counters = RoundCounters::default();
        let started = Instant::now();
        std::thread::scope(|scope| {
            for client in 0..clients {
                let (addr, refs, counters) = (&addr, &refs, &counters);
                scope.spawn(move || {
                    for i in 0..requests {
                        let spec_ref = &refs[(client + i) % refs.len()];
                        let served = predict_until_ok(addr, spec_ref, counters);
                        assert_served_matches(spec_ref, &served);
                    }
                });
            }
            std::thread::sleep(delay);
            match kind {
                Disruption::LoadOnly => {}
                Disruption::Sigterm => {
                    sigterms += 1;
                    daemon.signal("TERM").expect("deliver SIGTERM");
                    let status = daemon.wait().expect("reap daemon");
                    assert!(
                        status.success(),
                        "round {round}: SIGTERM'd daemon must drain and exit 0, got {status}"
                    );
                    daemon = Daemon::spawn(&bin, &daemon_args(&registry_root), Some(&plan))
                        .expect("restart daemon after SIGTERM");
                    addr.set(daemon.addr());
                }
                Disruption::Sigkill => {
                    sigkills += 1;
                    daemon.signal("KILL").expect("deliver SIGKILL");
                    let status = daemon.wait().expect("reap daemon");
                    assert!(
                        !status.success(),
                        "round {round}: SIGKILL'd daemon cannot have exited cleanly"
                    );
                    daemon = Daemon::spawn(&bin, &daemon_args(&registry_root), Some(&plan))
                        .expect("restart daemon after SIGKILL");
                    addr.set(daemon.addr());
                }
            }
        });
        health_check(&addr);
        let wall = started.elapsed().as_secs_f64();
        let row = (
            round,
            kind.label(),
            counters.ok.get(),
            counters.retried.get(),
            counters.shed.get(),
            counters.refits.get(),
            wall,
        );
        eprintln!(
            "chaos_test: round {:>2} [{:>7}] ok {:>3} retried {:>3} shed {:>2} refits {} \
             ({:.2}s)",
            row.0, row.1, row.2, row.3, row.4, row.5, row.6
        );
        for (total, value) in [
            (&totals.ok, row.2),
            (&totals.retried, row.3),
            (&totals.shed, row.4),
            (&totals.refits, row.5),
        ] {
            total.add(value);
        }
        rows.push(row);
    }

    // ---- Final drain: SIGTERM the chaotic daemon one last time.
    daemon.signal("TERM").expect("deliver final SIGTERM");
    let status = daemon.wait().expect("reap daemon");
    assert!(status.success(), "final drain must exit 0, got {status}");
    drop(daemon);

    // ---- Post-chaos registry verification.
    // Opening sweeps whatever debris the last kill left behind; after
    // that sweep the tree must be byte-perfect.
    let registry = Registry::open(&registry_root).expect("reopen chaos registry");
    let swept = registry.sweep_debris().expect("sweep");
    let debris = remaining_debris(&registry_root);
    assert!(
        debris.is_empty(),
        "registry still holds crash debris after sweep: {debris:?}"
    );
    for spec_ref in &refs {
        let outcome = registry
            .get(&spec_ref.spec.key(), spec_ref.spec.fingerprint())
            .expect("post-chaos artifact readable (hash verified)")
            .expect("post-chaos artifact present");
        let chaos_json = outcome
            .model
            .to_json_fingerprinted(spec_ref.spec.fingerprint());
        assert_eq!(
            chaos_json,
            spec_ref.reference_json,
            "{}: chaos-fitted artifact differs from the clean-room fit",
            spec_ref.spec.key()
        );
    }
    eprintln!(
        "chaos_test: registry verified ({} artifacts byte-identical to clean room, \
         {} debris files swept on reopen)",
        refs.len(),
        swept.total()
    );

    // ---- Post-chaos serving: a clean daemon over the chaos registry
    // answers warm and bit-identical to clean-room local inference.
    let mut clean_daemon =
        Daemon::spawn(&bin, &daemon_args(&registry_root), None).expect("spawn clean daemon");
    let clean_addr = AddrCell(Mutex::new(clean_daemon.addr()));
    let clean_counters = RoundCounters::default();
    for spec_ref in &refs {
        let reply = fit_until_ok(&clean_addr, spec_ref, &clean_counters);
        assert!(
            reply.get("warm").unwrap().as_bool().unwrap(),
            "{}: post-chaos daemon refitted instead of loading warm",
            spec_ref.spec.key()
        );
        let served = predict_until_ok(&clean_addr, spec_ref, &clean_counters);
        assert_served_matches(spec_ref, &served);
    }
    let (status, _) = http_request(clean_addr.get(), "POST", "/shutdown", None).expect("shutdown");
    assert_eq!(status, 200);
    let exit = clean_daemon.wait().expect("reap clean daemon");
    assert!(exit.success(), "clean daemon exited {exit}");

    let total_requests = clients as u64 * requests as u64 * rounds as u64;
    eprintln!(
        "chaos_test: PASS — {rounds} rounds ({sigterms} sigterm, {sigkills} sigkill), \
         {total_requests} requests all answered ({} retried, {} shed, {} refits), \
         {worker_respawns} worker respawns healed",
        totals.retried.get(),
        totals.shed.get(),
        totals.refits.get(),
    );

    // ---- Artifacts.
    let mut table = String::from("round,kind,ok,retried,shed,refits,wall_s\n");
    for (round, kind, ok, retried, shed, refits, wall) in &rows {
        table.push_str(&format!(
            "{round},{kind},{ok},{retried},{shed},{refits},{wall:.3}\n"
        ));
    }
    write_artifact(Path::new("results/chaos_test.csv"), &table);
    if output_json {
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"seed\": \"{seed:#x}\",\n  \"rounds\": {rounds},\n  \"clients\": {clients},\n  \
             \"requests_per_client\": {requests},\n  \"budget\": {budget},\n  \
             \"sigterm_rounds\": {sigterms},\n  \"sigkill_rounds\": {sigkills},\n  \
             \"requests_ok\": {},\n  \"requests_retried\": {},\n  \"requests_shed\": {},\n  \
             \"refits\": {},\n  \"worker_respawns\": {worker_respawns},\n  \
             \"debris_swept_on_reopen\": {},\n  \
             \"verdicts\": {{\n    \"artifacts_byte_identical\": true,\n    \
             \"predictions_bit_identical\": true,\n    \"registry_debris_free\": true\n  }},\n",
            totals.ok.get(),
            totals.retried.get(),
            totals.shed.get(),
            totals.refits.get(),
            swept.total(),
        ));
        json.push_str("  \"rows\": [\n");
        for (i, (round, kind, ok, retried, shed, refits, wall)) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            json.push_str(&format!(
                "    {{\"round\": {round}, \"kind\": \"{kind}\", \"ok\": {ok}, \
                 \"retried\": {retried}, \"shed\": {shed}, \"refits\": {refits}, \
                 \"wall_s\": {wall:.3}}}{comma}\n"
            ));
        }
        json.push_str("  ]\n}\n");
        write_artifact(Path::new("results/chaos_test.json"), &json);
    }

    if keep_root {
        eprintln!("chaos_test: kept scratch tree at {}", scratch.display());
    } else {
        let _ = std::fs::remove_dir_all(&scratch);
    }
}

fn site(action: FailAction, probability: f64, max_fires: Option<u64>) -> SiteSpec {
    SiteSpec {
        action,
        probability,
        max_fires,
    }
}

fn daemon_args(root: &Path) -> Vec<String> {
    [
        "--addr",
        "127.0.0.1:0",
        "--root",
        &root.display().to_string(),
        "--tick-ms",
        "1",
        "--gate-wait-ms",
        "2000",
        "--drain-ms",
        "20000",
    ]
    .iter()
    .map(ToString::to_string)
    .collect()
}

/// Locates the served binary, building it first when this harness was
/// built without it (`cargo run --bin chaos_test` straight from clean).
fn ensure_served_binary() -> PathBuf {
    ensure_binary("archpredict-served", locate_served_binary)
}

fn ensure_binary(package: &str, locate: impl Fn() -> Result<PathBuf, String>) -> PathBuf {
    if let Ok(path) = locate() {
        return path;
    }
    let mut build = std::process::Command::new(env!("CARGO"));
    build.args(["build", "-p", package]);
    if !cfg!(debug_assertions) {
        build.arg("--release");
    }
    let status = build.status().expect("run cargo build");
    assert!(status.success(), "building {package} failed");
    locate().expect("binary after building it")
}

/// Seeded worker-pool chaos: real worker processes die mid-span under a
/// deterministic `exit:9` schedule; the pool respawns and re-blames, the
/// retry layer heals, and the healed batch must be bit-identical to the
/// undisturbed in-process run. Returns the respawn count.
fn worker_chaos_phase(seed: u64) -> u64 {
    ensure_binary("archpredict-worker", || {
        locate_worker_binary().map_err(|e| e.to_string())
    });
    let spec = WorkerSpec::Sleepy {
        study: Study::MemorySystem,
        sleep_micros: 100,
        crash_index: None,
        nan_index: None,
    };
    let space = spec.space();
    let indices: Vec<usize> = (0..240).map(|i| (i * 7919) % space.size()).collect();

    let mut reference_pool =
        ProcessPoolOracle::with_workers(spec.clone(), 0).expect("in-process pool");
    reference_pool.set_span_timeout(None);
    let mut stats = SimStats::default();
    let reference: Vec<u64> = reference_pool
        .evaluate_batch(&space, &indices, &mut stats)
        .iter()
        .map(|r| r.expect("sleepy evaluator never fails").to_bits())
        .collect();

    // Workers inherit the kill schedule through the environment; this
    // process never installs it locally, so only children die.
    std::env::set_var(
        ENV_FAILPOINTS,
        render_plan(
            seed,
            &[(FP_WORKER_EVAL, site(FailAction::Exit(9), 0.05, None))],
        ),
    );
    let mut chaotic_pool = ProcessPoolOracle::with_workers(spec, 2).expect("chaotic pool");
    chaotic_pool.set_span_timeout(None);
    let healing = RetryingOracle::with_policy(
        chaotic_pool,
        RetryPolicy {
            max_attempts: 10,
            ..RetryPolicy::default()
        },
    );
    let mut stats = SimStats::default();
    let healed: Vec<u64> = healing
        .evaluate_batch(&space, &indices, &mut stats)
        .iter()
        .map(|r| r.expect("retry layer heals every worker death").to_bits())
        .collect();
    std::env::remove_var(ENV_FAILPOINTS);

    assert_eq!(
        healed, reference,
        "healed worker-chaos batch diverged from the undisturbed run"
    );
    let respawns = healing.inner().respawns();
    assert!(
        respawns >= 1,
        "worker chaos schedule killed nobody; raise the probability or change the seed"
    );
    eprintln!(
        "chaos_test: worker phase healed {} evaluations through {respawns} respawns \
         ({} retries)",
        indices.len(),
        stats.retries
    );
    respawns
}

/// POSTs `/fit` until it answers 200, riding out injected faults, kills
/// and restarts. Returns the final reply.
fn fit_until_ok(
    addr: &AddrCell,
    spec_ref: &SpecRef,
    counters: &RoundCounters,
) -> archpredict_stats::json::Value {
    let deadline = Instant::now() + CLIENT_DEADLINE;
    loop {
        match http_request(addr.get(), "POST", "/fit", Some(&spec_ref.fit_body)) {
            Ok((200, reply)) => {
                counters.ok.incr();
                return reply;
            }
            Ok((503, _)) => counters.shed.incr(),
            Ok((_, _)) | Err(_) => counters.retried.incr(),
        };
        assert!(
            Instant::now() < deadline,
            "fit for {} did not succeed within {CLIENT_DEADLINE:?}",
            spec_ref.spec.key()
        );
        std::thread::sleep(Duration::from_millis(40));
    }
}

/// POSTs `/predict` until it answers 200; a 404 (the model vanished
/// because a kill beat its registry commit) triggers a refit first.
fn predict_until_ok(addr: &AddrCell, spec_ref: &SpecRef, counters: &RoundCounters) -> Vec<f64> {
    let deadline = Instant::now() + CLIENT_DEADLINE;
    loop {
        match http_request(addr.get(), "POST", "/predict", Some(&spec_ref.predict_body)) {
            Ok((200, reply)) => {
                counters.ok.incr();
                return reply
                    .get("predictions")
                    .unwrap()
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|v| v.as_f64().unwrap())
                    .collect();
            }
            Ok((503, _)) => counters.shed.incr(),
            Ok((404, _)) => {
                counters.refits.incr();
                fit_until_ok(addr, spec_ref, counters);
                continue;
            }
            Ok((_, _)) | Err(_) => counters.retried.incr(),
        };
        assert!(
            Instant::now() < deadline,
            "predict for {} did not succeed within {CLIENT_DEADLINE:?}",
            spec_ref.spec.key()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn assert_served_matches(spec_ref: &SpecRef, served: &[f64]) {
    assert_eq!(served.len(), spec_ref.local.len());
    for (i, (s, l)) in served.iter().zip(&spec_ref.local).enumerate() {
        assert_eq!(
            s.to_bits(),
            l.to_bits(),
            "{}: served prediction for index {} diverged from clean-room inference: {s} != {l}",
            spec_ref.spec.key(),
            spec_ref.probe[i]
        );
    }
}

/// The daemon must answer `/ready` 200 with `ready: true` shortly after
/// every round (injected handler faults can 500 a few probes; kills
/// cannot linger). Readiness is the right probe here, not liveness: a
/// draining daemon still answers `/health` 200 but will never take the
/// next round's work.
fn health_check(addr: &AddrCell) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok((200, ready)) = http_request(addr.get(), "GET", "/ready", None) {
            assert!(ready.get("ok").unwrap().as_bool().unwrap());
            assert!(ready.get("ready").unwrap().as_bool().unwrap());
            return;
        }
        assert!(
            Instant::now() < deadline,
            "daemon not ready 30s after the round ended"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Debris-shaped files left on disk after the final sweep: torn temps
/// anywhere, claim/grave files under `leases/`.
fn remaining_debris(root: &Path) -> Vec<String> {
    let mut found = Vec::new();
    for dir in ["entries", "objects", "leases"] {
        let Ok(listing) = std::fs::read_dir(root.join(dir)) else {
            continue;
        };
        for item in listing.flatten() {
            let name = item.file_name().to_string_lossy().into_owned();
            let torn = name.ends_with(".tmp");
            let lease_debris =
                dir == "leases" && (name.contains(".claim-") || name.contains(".stale-"));
            if torn || lease_debris {
                found.push(format!("{dir}/{name}"));
            }
        }
    }
    found.sort();
    found
}
