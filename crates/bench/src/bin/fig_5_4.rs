//! Figure 5.4: learning curves when ANN modeling is combined with
//! SimPoint — the ensembles train on SimPoint's noisy, cheap estimates;
//! error is measured against full simulation (processor study, the four
//! longest-running applications).

use archpredict::studies::Study;
use archpredict_bench::{curve_for, CurveOpts, ExperimentOpts};
use archpredict_workloads::Benchmark;

fn main() {
    let opts = ExperimentOpts::from_args(&Benchmark::FEATURED);
    let mut csv = String::new();
    for &benchmark in &opts.apps {
        let result = curve_for(&CurveOpts {
            study: Study::Processor,
            benchmark,
            batch: opts.batch,
            max_samples: opts.max_samples,
            eval_points: opts.eval_points,
            simpoint: true,
            seed: opts.seed,
            cache_dir: Some(format!("{}/simcache", opts.out_dir)),
        });
        println!("{}", result.curve.to_table());
        println!(
            "  SimPoint reduces instructions per simulation by {:.1}x\n",
            result.instructions_per_full_eval as f64 / result.instructions_per_training_eval as f64
        );
        csv.push_str(&result.curve.to_csv());
    }
    archpredict_bench::runner::write_artifact(&opts.out_path("fig_5_4.csv"), &csv);
}
