//! Figure 5.4: learning curves when ANN modeling is combined with
//! SimPoint — the ensembles train on SimPoint's noisy, cheap estimates;
//! error is measured against full simulation (processor study, the four
//! longest-running applications).

use archpredict::studies::Study;
use archpredict_bench::{run_figure, ExperimentOpts};
use archpredict_workloads::Benchmark;

fn main() {
    let opts = ExperimentOpts::from_args(&Benchmark::FEATURED);
    let registry = opts.registry();
    let curves: Vec<_> = opts
        .apps
        .iter()
        .map(|&b| opts.curve(Study::Processor, b).with_simpoint(true))
        .collect();
    run_figure(
        &registry,
        &curves,
        &opts.out_path("fig_5_4.csv"),
        |result| {
            println!(
                "  SimPoint reduces instructions per simulation by {:.1}x\n",
                result.instructions_per_full_eval as f64
                    / result.instructions_per_training_eval as f64
            );
        },
    );
}
