//! Figure 5.6: factor of reduction in simulated instructions achieved by
//! ANN+SimPoint at three error levels per application.

use archpredict::studies::Study;
use archpredict_bench::{reduction_analysis, run_curves, ExperimentOpts};
use archpredict_workloads::Benchmark;

fn main() {
    let opts = ExperimentOpts::from_args(&Benchmark::FEATURED);
    let registry = opts.registry();
    let targets = [1.0, 2.0, 3.5];
    let curves: Vec<_> = opts
        .apps
        .iter()
        .map(|&b| opts.curve(Study::Processor, b).with_simpoint(true))
        .collect();
    let mut csv = String::from(
        "app,target_error,achieved_error,samples,ann_factor,simpoint_factor,combined_factor\n",
    );
    println!(
        "{:28} {:>7} {:>9} {:>8} {:>8} {:>9} {:>10}",
        "app", "target%", "achieved%", "samples", "ANNx", "SimPointx", "combinedx"
    );
    for result in run_curves(&registry, &curves) {
        for row in reduction_analysis(&result, &targets) {
            println!(
                "{:28} {:>7.1} {:>9.2} {:>8} {:>8.1} {:>9.1} {:>10.1}",
                row.app,
                row.target_error,
                row.achieved_error,
                row.samples,
                row.ann_factor,
                row.simpoint_factor,
                row.combined_factor
            );
            csv.push_str(&format!(
                "{},{},{:.3},{},{:.2},{:.2},{:.2}\n",
                row.app,
                row.target_error,
                row.achieved_error,
                row.samples,
                row.ann_factor,
                row.simpoint_factor,
                row.combined_factor
            ));
        }
    }
    archpredict_bench::runner::write_artifact(&opts.out_path("fig_5_6.csv"), &csv);
}
