//! Figure 5.8: wall-clock time to train the 10-fold cross-validation
//! ensemble as a function of training-set size, for both studies. The
//! paper's result — training time is linear in the sample count and
//! negligible next to simulation time — should reproduce directly.

use archpredict::simulate::{CachedEvaluator, SimBudget, StudyEvaluator};
use archpredict::studies::Study;
use archpredict_ann::{fit_ensemble, Dataset, Sample, TrainConfig};
use archpredict_bench::ExperimentOpts;
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::sample_without_replacement;
use archpredict_workloads::{Benchmark, TraceGenerator};
use std::time::Instant;

fn main() {
    let opts = ExperimentOpts::from_args(&[Benchmark::Mesa]);
    let benchmark = opts.apps[0];
    let mut csv = String::from("study,samples,percent_sampled,train_seconds,epochs_cap\n");
    for study in Study::ALL {
        let space = study.space();
        let generator = TraceGenerator::new(benchmark);
        let evaluator = CachedEvaluator::new(
            StudyEvaluator::with_budget(
                study,
                benchmark,
                SimBudget::spread(&generator, 3, 8_000, 16_000),
            ),
            space.clone(),
        );
        let mut rng = Xoshiro256::seed_from(opts.seed);
        // Sizes from 1% to 9% of the space, as in the paper's x-axis.
        let max = (space.size() as f64 * 0.09) as usize;
        let indices = sample_without_replacement(space.size(), max, &mut rng);
        eprintln!("[fig 5.8] simulating {} {} points...", max, study.name());
        let samples: Vec<Sample> = indices
            .iter()
            .map(|&i| {
                Sample::new(
                    space.encode(&space.point(i)),
                    evaluator
                        .evaluate(&space.point(i))
                        .expect("fault-free evaluator"),
                )
            })
            .collect();
        println!("{} study ({} points = 9% of space)", study.name(), max);
        println!("  {:>8} {:>8} {:>12}", "samples", "%space", "train time");
        for percent in [1, 2, 3, 4, 5, 6, 7, 8, 9] {
            let n = (space.size() as f64 * percent as f64 / 100.0) as usize;
            let data: Dataset = samples[..n.min(samples.len())].iter().cloned().collect();
            // Fixed epoch budget: the figure's claim is that training time
            // scales linearly with the sample count (the paper's footnote:
            // O(H(I+O)PD) for P passes over D points).
            let config = TrainConfig {
                max_epochs: 400,
                patience: 400,
                ..TrainConfig::default()
            };
            let start = Instant::now();
            let _fit = fit_ensemble(&data, 10, &config, opts.seed);
            let seconds = start.elapsed().as_secs_f64();
            println!("  {:>8} {:>7}% {:>11.2}s", data.len(), percent, seconds);
            csv.push_str(&format!(
                "{},{},{},{:.4},{}\n",
                study.name(),
                data.len(),
                percent,
                seconds,
                config.max_epochs
            ));
        }
    }
    archpredict_bench::runner::write_artifact(&opts.out_path("fig_5_8.csv"), &csv);
}
