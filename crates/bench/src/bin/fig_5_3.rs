//! Figure 5.3 (and A.3 with `--apps all`): estimated vs true mean and
//! standard deviation of percentage error on the Processor study.

use archpredict::studies::Study;
use archpredict_bench::{run_figure, ExperimentOpts};
use archpredict_workloads::Benchmark;

fn main() {
    let opts = ExperimentOpts::from_args(&Benchmark::FEATURED);
    let registry = opts.registry();
    let curves: Vec<_> = opts
        .apps
        .iter()
        .map(|&b| opts.curve(Study::Processor, b))
        .collect();
    run_figure(
        &registry,
        &curves,
        &opts.out_path("fig_5_3.csv"),
        |result| {
            // Report the estimate's tracking quality, the figure's point.
            let worst_gap = result
                .curve
                .points
                .iter()
                .filter_map(|p| p.true_mean.map(|t| (p.estimated_mean - t).abs()))
                .fold(0.0_f64, f64::max);
            println!("  worst |estimate - true| gap: {worst_gap:.2}%\n");
        },
    );
}
