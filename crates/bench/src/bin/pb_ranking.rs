//! §4's methodology check: Plackett–Burman fractional factorial design
//! with foldover (Yi et al., HPCA 2003) ranks the significance of the
//! varied parameters, validating that the studies vary parameters that
//! actually matter.

use archpredict::simulate::{PointEvaluator, SimBudget, StudyEvaluator};
use archpredict::space::DesignPoint;
use archpredict::studies::Study;
use archpredict_bench::ExperimentOpts;
use archpredict_stats::plackett_burman::Design;
use archpredict_workloads::{Benchmark, TraceGenerator};

fn main() {
    let opts = ExperimentOpts::from_args(&[Benchmark::Mesa, Benchmark::Mcf]);
    let mut csv = String::from("study,app,rank,param,abs_effect_ipc\n");
    for study in Study::ALL {
        let space = study.space();
        let params = space.params().len();
        let design = Design::plackett_burman_foldover(params).expect("space fits PB generators");
        println!(
            "== {} study: PB foldover design, {} runs for {} parameters ==",
            study.name(),
            design.runs(),
            params
        );
        for &benchmark in &opts.apps {
            let generator = TraceGenerator::new(benchmark);
            let evaluator = StudyEvaluator::with_budget(
                study,
                benchmark,
                SimBudget::spread(&generator, 3, 8_000, 16_000),
            );
            // Map +1/-1 levels to each parameter's highest/lowest level.
            let responses: Vec<f64> = design
                .iter()
                .map(|run| {
                    let levels: Vec<usize> = run
                        .iter()
                        .zip(space.params())
                        .map(|(&sign, p)| if sign > 0 { p.levels() - 1 } else { 0 })
                        .collect();
                    evaluator.evaluate(&DesignPoint(levels))
                })
                .collect();
            println!("  {}:", benchmark.name());
            for (rank, (param, effect)) in design.rank(&responses).iter().enumerate() {
                println!(
                    "    {:2}. {:20} |effect| = {:.4} IPC",
                    rank + 1,
                    space.params()[*param].name(),
                    effect
                );
                csv.push_str(&format!(
                    "{},{},{},{},{:.6}\n",
                    study.name(),
                    benchmark.name(),
                    rank + 1,
                    space.params()[*param].name(),
                    effect
                ));
            }
        }
        println!();
    }
    archpredict_bench::runner::write_artifact(&opts.out_path("pb_ranking.csv"), &csv);
}
