//! Parallel-training speedup table: wall-clock time of a 10-fold
//! `fit_ensemble` at 1, 2, 4, … worker threads up to the machine's core
//! count, with the bit-for-bit determinism of the result checked at every
//! thread count.
//!
//! On a machine with ≥4 cores the table should show ≥2× speedup over the
//! sequential row. Usage:
//!
//! ```text
//! cargo run --release --bin train_speedup [samples] [repeats]
//! ```

use archpredict_ann::{fit_ensemble, CvFit, Dataset, Parallelism, Sample, TrainConfig};
use archpredict_bench::write_artifact;
use archpredict_stats::rng::Xoshiro256;
use std::path::Path;
use std::time::Instant;

fn dataset(n: usize) -> Dataset {
    let mut rng = Xoshiro256::seed_from(5);
    (0..n)
        .map(|_| {
            let a = rng.next_f64();
            let b = rng.next_f64();
            let c = rng.next_f64();
            Sample::new(
                vec![a, b, c],
                0.3 + 0.5 * (a * 2.0).sin().abs() + 0.2 * b * c,
            )
        })
        .collect()
}

fn fits_match(a: &CvFit, b: &CvFit) -> bool {
    let probes = [[0.1, 0.2, 0.3], [0.5, 0.5, 0.5], [0.9, 0.4, 0.7]];
    a.estimate == b.estimate
        && probes
            .iter()
            .all(|x| a.ensemble.member_predictions(x) == b.ensemble.member_predictions(x))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let samples: usize = args
        .next()
        .map(|a| a.parse().expect("samples must be a number"))
        .unwrap_or(200);
    let repeats: usize = args
        .next()
        .map(|a| a.parse().expect("repeats must be a number"))
        .unwrap_or(3);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let data = dataset(samples);
    let config_with = |parallelism| TrainConfig {
        max_epochs: 200,
        patience: 200,
        parallelism,
        ..TrainConfig::default()
    };

    // Thread counts: 1, 2, 4, ... up to the core count (always including
    // the core count itself, and 10 = fold count if the machine is bigger).
    let mut thread_counts = vec![1usize];
    let mut t = 2;
    while t < cores.min(10) {
        thread_counts.push(t);
        t *= 2;
    }
    if cores > 1 {
        thread_counts.push(cores.min(10));
    }

    eprintln!(
        "train_speedup: {samples} samples, 10 folds, best of {repeats} runs, {cores} core(s)"
    );
    let reference = fit_ensemble(&data, 10, &config_with(Parallelism::Fixed(1)), 7);

    let mut rows = Vec::new();
    let mut baseline = f64::NAN;
    for &threads in &thread_counts {
        let config = config_with(Parallelism::Fixed(threads));
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let started = Instant::now();
            let fit = fit_ensemble(&data, 10, &config, 7);
            best = best.min(started.elapsed().as_secs_f64());
            assert!(
                fits_match(&reference, &fit),
                "{threads}-thread fit diverged from the sequential fit"
            );
        }
        if threads == 1 {
            baseline = best;
        }
        rows.push((threads, best, baseline / best));
    }

    let mut table = String::from("threads,seconds,speedup\n");
    eprintln!("{:>8} {:>10} {:>8}", "threads", "seconds", "speedup");
    for (threads, seconds, speedup) in &rows {
        eprintln!("{threads:>8} {seconds:>10.3} {speedup:>7.2}x");
        table.push_str(&format!("{threads},{seconds:.4},{speedup:.3}\n"));
    }
    eprintln!("(all thread counts produced bit-for-bit identical fits)");
    write_artifact(Path::new("results/train_speedup.csv"), &table);

    if cores >= 4 {
        let best = rows.iter().map(|r| r.2).fold(0.0, f64::max);
        assert!(
            best >= 2.0,
            "expected >=2x speedup with {cores} cores, best was {best:.2}x"
        );
    }
}
