//! Training speedup table, two sections sharing one CSV:
//!
//! 1. **Kernel section** (always armed, single-thread): the vectorized
//!    backpropagation step (`Network::train_example`) against the textbook
//!    scalar reference (`Network::train_example_reference`) over identical
//!    presentations, asserting the resulting networks are **bit-for-bit
//!    identical** and that the vectorized step is at least
//!    [`MIN_KERNEL_SPEEDUP`]x faster. This gate does not depend on core
//!    count, so it fails loudly on any machine if the kernels regress.
//! 2. **Parallel-fit section**: wall-clock of a 10-fold `fit_ensemble` at
//!    1, 2, 4, … worker threads up to the machine's core count, with
//!    bit-for-bit determinism checked at every thread count. The ≥2x
//!    multi-thread assertion necessarily stays gated on having ≥4 cores.
//!
//! ```text
//! cargo run --release --bin train_speedup [samples] [repeats] [--output-json]
//! ```
//!
//! `--output-json` writes `results/train_speedup.json` (machine-readable
//! mirror of the CSV rows plus run metadata) alongside the CSV.

use archpredict_ann::{fit_ensemble, CvFit, Dataset, Network, Parallelism, Sample, TrainConfig};
use archpredict_bench::write_artifact;
use archpredict_stats::rng::Xoshiro256;
use std::path::Path;
use std::time::Instant;

/// Required speedup of the vectorized backprop step over the scalar
/// reference. Conservative: the restructured loops deliver well above
/// this; the gate exists so training can never quietly fall back to
/// textbook-loop throughput.
const MIN_KERNEL_SPEEDUP: f64 = 1.2;

/// Presentations per timed kernel run. Below roughly a hundred thousand
/// steps the comparison is noise-dominated, so smoke runs skip the gate.
const KERNEL_ASSERT_MIN_STEPS: usize = 100_000;

fn dataset(n: usize) -> Dataset {
    let mut rng = Xoshiro256::seed_from(5);
    (0..n)
        .map(|_| {
            let a = rng.next_f64();
            let b = rng.next_f64();
            let c = rng.next_f64();
            Sample::new(
                vec![a, b, c],
                0.3 + 0.5 * (a * 2.0).sin().abs() + 0.2 * b * c,
            )
        })
        .collect()
}

fn fits_match(a: &CvFit, b: &CvFit) -> bool {
    let probes = [[0.1, 0.2, 0.3], [0.5, 0.5, 0.5], [0.9, 0.4, 0.7]];
    a.estimate == b.estimate
        && probes
            .iter()
            .all(|x| a.ensemble.member_predictions(x) == b.ensemble.member_predictions(x))
}

/// Times `steps` single-example SGD presentations through `step`,
/// returning (seconds, trained network). Inputs/targets are regenerated
/// identically per call from a fixed seed.
fn run_trainer(
    steps: usize,
    mut net: Network,
    step: impl Fn(&mut Network, &[f64; 3], &[f64; 1]) -> f64,
) -> (f64, Network) {
    let mut rng = Xoshiro256::seed_from(11);
    let examples: Vec<([f64; 3], [f64; 1])> = (0..1024)
        .map(|_| {
            let x = [rng.next_f64(), rng.next_f64(), rng.next_f64()];
            let t = [0.3 + 0.4 * x[0] + 0.2 * x[1] * x[2]];
            (x, t)
        })
        .collect();
    let started = Instant::now();
    let mut sink = 0.0;
    for i in 0..steps {
        let (x, t) = &examples[i % examples.len()];
        sink += step(&mut net, x, t);
    }
    assert!(sink.is_finite(), "training error diverged");
    (started.elapsed().as_secs_f64(), net)
}

fn main() {
    let (flags, positional): (Vec<String>, Vec<String>) =
        std::env::args().skip(1).partition(|a| a.starts_with("--"));
    let output_json = flags.iter().any(|f| f == "--output-json");
    if let Some(unknown) = flags.iter().find(|f| *f != "--output-json") {
        panic!("unknown flag {unknown} (supported: --output-json)");
    }
    let mut args = positional.into_iter();
    let samples: usize = args
        .next()
        .map(|a| a.parse().expect("samples must be a number"))
        .unwrap_or(200);
    let repeats: usize = args
        .next()
        .map(|a| a.parse().expect("repeats must be a number"))
        .unwrap_or(3);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows: Vec<(String, f64, f64)> = Vec::new();

    // --- Kernel section: scalar reference vs vectorized backprop. ---
    let steps = (samples * 1000).max(KERNEL_ASSERT_MIN_STEPS.min(200_000));
    eprintln!("train_speedup kernel section: {steps} presentations, [3,16,1] network");
    let mut rng = Xoshiro256::seed_from(9);
    let fresh = Network::new(&[3, 16, 1], &mut rng);
    let (mut ref_best, mut vec_best) = (f64::INFINITY, f64::INFINITY);
    let mut nets: Option<(Network, Network)> = None;
    for _ in 0..repeats {
        let (t_ref, net_ref) = run_trainer(steps, fresh.clone(), |n, x, t| {
            n.train_example_reference(x, t, 0.1, 0.5)
        });
        let (t_vec, net_vec) = run_trainer(steps, fresh.clone(), |n, x, t| {
            n.train_example(x, t, 0.1, 0.5)
        });
        ref_best = ref_best.min(t_ref);
        vec_best = vec_best.min(t_vec);
        nets = Some((net_ref, net_vec));
    }
    let (net_ref, net_vec) = nets.expect("at least one repeat");
    assert_eq!(
        net_ref, net_vec,
        "vectorized trainer diverged from the scalar reference"
    );
    eprintln!("(vectorized and reference trainers produced bit-for-bit identical networks)");
    rows.push(("train_step_reference".into(), ref_best, 1.0));
    rows.push((
        "train_step_vectorized".into(),
        vec_best,
        ref_best / vec_best,
    ));

    // --- Parallel-fit section. ---
    let data = dataset(samples);
    let config_with = |parallelism| TrainConfig {
        max_epochs: 200,
        patience: 200,
        parallelism,
        ..TrainConfig::default()
    };

    // Thread counts: 1, 2, 4, ... up to the core count (always including
    // the core count itself, and 10 = fold count if the machine is bigger).
    let mut thread_counts = vec![1usize];
    let mut t = 2;
    while t < cores.min(10) {
        thread_counts.push(t);
        t *= 2;
    }
    if cores > 1 {
        thread_counts.push(cores.min(10));
    }

    eprintln!(
        "train_speedup fit section: {samples} samples, 10 folds, best of {repeats} runs, \
         {cores} core(s)"
    );
    let reference = fit_ensemble(&data, 10, &config_with(Parallelism::Fixed(1)), 7);

    let mut fit_baseline = f64::NAN;
    for &threads in &thread_counts {
        let config = config_with(Parallelism::Fixed(threads));
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let started = Instant::now();
            let fit = fit_ensemble(&data, 10, &config, 7);
            best = best.min(started.elapsed().as_secs_f64());
            assert!(
                fits_match(&reference, &fit),
                "{threads}-thread fit diverged from the sequential fit"
            );
        }
        if threads == 1 {
            fit_baseline = best;
        }
        rows.push((format!("fit_threads_{threads}"), best, fit_baseline / best));
    }
    eprintln!("(all thread counts produced bit-for-bit identical fits)");

    let mut table = String::from("path,seconds,speedup_vs_baseline\n");
    eprintln!("{:>22} {:>10} {:>8}", "path", "seconds", "speedup");
    for (path, seconds, speedup) in &rows {
        eprintln!("{path:>22} {seconds:>10.4} {speedup:>7.2}x");
        table.push_str(&format!("{path},{seconds:.6},{speedup:.3}\n"));
    }
    write_artifact(Path::new("results/train_speedup.csv"), &table);

    if output_json {
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"samples\": {samples},\n  \"kernel_steps\": {steps},\n  \
             \"repeats\": {repeats},\n  \"cores\": {cores},\n  \"folds\": 10,\n  \
             \"determinism\": \"bit_identical_all_paths\",\n  \"rows\": [\n"
        ));
        for (i, (path, seconds, speedup)) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            json.push_str(&format!(
                "    {{\"path\": \"{path}\", \"seconds\": {seconds:.6}, \
                 \"speedup_vs_baseline\": {speedup:.3}}}{comma}\n"
            ));
        }
        json.push_str("  ]\n}\n");
        write_artifact(Path::new("results/train_speedup.json"), &json);
    }

    if steps >= KERNEL_ASSERT_MIN_STEPS {
        let kernel_speedup = ref_best / vec_best;
        assert!(
            kernel_speedup >= MIN_KERNEL_SPEEDUP,
            "vectorized backprop is only {kernel_speedup:.2}x over the scalar reference \
             ({vec_best:.4}s vs {ref_best:.4}s); must deliver >= {MIN_KERNEL_SPEEDUP}x"
        );
        eprintln!(
            "kernel gate: vectorized step is {kernel_speedup:.2}x \
             (>= {MIN_KERNEL_SPEEDUP}x required)"
        );
    } else {
        eprintln!("(smoke run: <{KERNEL_ASSERT_MIN_STEPS} steps, kernel gate skipped)");
    }
    if cores >= 4 {
        let best = rows
            .iter()
            .filter(|r| r.0.starts_with("fit_threads"))
            .map(|r| r.2)
            .fold(0.0, f64::max);
        assert!(
            best >= 2.0,
            "expected >=2x fit speedup with {cores} cores, best was {best:.2}x"
        );
    }
}
