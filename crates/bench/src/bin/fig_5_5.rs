//! Figure 5.5: estimated vs true error when ANN modeling is combined with
//! SimPoint. Cross-validation estimates are computed against the noisy
//! SimPoint targets (the models never see true outcomes), so outside the
//! sparse-sampling regime the estimates run slightly *below* truth — the
//! asymmetry the paper calls out in §5.3.

use archpredict::studies::Study;
use archpredict_bench::{run_figure, ExperimentOpts};
use archpredict_workloads::Benchmark;

fn main() {
    let opts = ExperimentOpts::from_args(&Benchmark::FEATURED);
    let registry = opts.registry();
    let curves: Vec<_> = opts
        .apps
        .iter()
        .map(|&b| opts.curve(Study::Processor, b).with_simpoint(true))
        .collect();
    run_figure(
        &registry,
        &curves,
        &opts.out_path("fig_5_5.csv"),
        |result| {
            let gaps: Vec<f64> = result
                .curve
                .points
                .iter()
                .filter_map(|p| p.true_mean.map(|t| p.estimated_mean - t))
                .collect();
            let under = gaps.iter().filter(|&&g| g < 0.0).count();
            println!(
                "  estimate below truth in {under}/{} rounds (expected under noise)\n",
                gaps.len()
            );
        },
    );
}
