//! Figure 5.5: estimated vs true error when ANN modeling is combined with
//! SimPoint. Cross-validation estimates are computed against the noisy
//! SimPoint targets (the models never see true outcomes), so outside the
//! sparse-sampling regime the estimates run slightly *below* truth — the
//! asymmetry the paper calls out in §5.3.

use archpredict::studies::Study;
use archpredict_bench::{curve_for, CurveOpts, ExperimentOpts};
use archpredict_workloads::Benchmark;

fn main() {
    let opts = ExperimentOpts::from_args(&Benchmark::FEATURED);
    let mut csv = String::new();
    for &benchmark in &opts.apps {
        let result = curve_for(&CurveOpts {
            study: Study::Processor,
            benchmark,
            batch: opts.batch,
            max_samples: opts.max_samples,
            eval_points: opts.eval_points,
            simpoint: true,
            seed: opts.seed,
            cache_dir: Some(format!("{}/simcache", opts.out_dir)),
        });
        println!("{}", result.curve.to_table());
        let gaps: Vec<f64> = result
            .curve
            .points
            .iter()
            .filter_map(|p| p.true_mean.map(|t| p.estimated_mean - t))
            .collect();
        let under = gaps.iter().filter(|&&g| g < 0.0).count();
        println!(
            "  estimate below truth in {under}/{} rounds (expected under noise)\n",
            gaps.len()
        );
        csv.push_str(&result.curve.to_csv());
    }
    archpredict_bench::runner::write_artifact(&opts.out_path("fig_5_5.csv"), &csv);
}
