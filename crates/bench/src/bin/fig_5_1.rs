//! Figure 5.1 (and A.1 with `--apps all`): learning curves — mean and
//! standard deviation of true percentage error vs. fraction of the space
//! sampled, for the memory-system and processor studies.

use archpredict::studies::Study;
use archpredict_bench::{run_figure, ExperimentOpts};
use archpredict_workloads::Benchmark;

fn main() {
    let opts = ExperimentOpts::from_args(&Benchmark::FEATURED);
    let registry = opts.registry();
    let curves: Vec<_> = Study::ALL
        .iter()
        .flat_map(|&study| opts.apps.iter().map(move |&b| (study, b)))
        .map(|(study, benchmark)| opts.curve(study, benchmark))
        .collect();
    run_figure(&registry, &curves, &opts.out_path("fig_5_1.csv"), |_| {});
}
