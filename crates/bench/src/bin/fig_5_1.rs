//! Figure 5.1 (and A.1 with `--apps all`): learning curves — mean and
//! standard deviation of true percentage error vs. fraction of the space
//! sampled, for the memory-system and processor studies.

use archpredict::studies::Study;
use archpredict_bench::{curve_for, CurveOpts, ExperimentOpts};
use archpredict_workloads::Benchmark;

fn main() {
    let opts = ExperimentOpts::from_args(&Benchmark::FEATURED);
    let mut csv = String::new();
    for study in Study::ALL {
        for &benchmark in &opts.apps {
            let result = curve_for(&CurveOpts {
                study,
                benchmark,
                batch: opts.batch,
                max_samples: opts.max_samples,
                eval_points: opts.eval_points,
                simpoint: false,
                seed: opts.seed,
                cache_dir: Some(format!("{}/simcache", opts.out_dir)),
            });
            println!("{}", result.curve.to_table());
            csv.push_str(&result.curve.to_csv());
        }
    }
    archpredict_bench::runner::write_artifact(&opts.out_path("fig_5_1.csv"), &csv);
}
