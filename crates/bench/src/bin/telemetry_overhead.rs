//! Telemetry overhead gate: the unified `core::telemetry` layer promises
//! that instrumentation is free when nobody is looking — a disarmed span
//! is one relaxed atomic load, a counter bump is one relaxed add — and
//! close to free even with the JSONL trace sink armed. This bench holds
//! that promise numerically on the two hot paths the paper's pipeline
//! spends its time in: the batched inference sweep (`infer.sweep` span +
//! counters per call) and the cached simulation batch (per-hit counter
//! traffic), measured disarmed and then with `ARCHPREDICT_TRACE` armed.
//!
//! Both legs assert **bit-for-bit identical results** across the armed
//! and disarmed runs — arming observability must never perturb the
//! numbers — and at full workload size the armed best-of-N time must be
//! within [`MAX_OVERHEAD_PCT`] percent of the disarmed one. Usage:
//!
//! ```text
//! cargo run --release --bin telemetry_overhead [points] [sweeps] [repeats]
//! ```
//!
//! Writes `results/telemetry_overhead.csv` and
//! `results/telemetry_overhead.json` unconditionally: this bench *is*
//! the machine-readable evidence for the overhead claim.

use archpredict::infer::predict_indices;
use archpredict::simulate::{CachedEvaluator, Oracle, SimBudget, SimStats, StudyEvaluator};
use archpredict::studies::Study;
use archpredict::telemetry;
use archpredict_ann::{fit_ensemble, Dataset, Parallelism, Sample, TrainConfig};
use archpredict_bench::write_artifact;
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::sample_without_replacement;
use std::path::Path;
use std::time::Instant;

/// Maximum tolerated slowdown of the armed run over the disarmed run.
const MAX_OVERHEAD_PCT: f64 = 2.0;

/// Below this many swept points the timed regions are too short for a
/// percent-level comparison; the run still measures and reports, but the
/// gate is skipped (same policy as the speedup benches).
const ASSERT_MIN_POINTS: usize = 4_096;

struct Leg {
    name: &'static str,
    disarmed: f64,
    armed: f64,
}

impl Leg {
    fn overhead_pct(&self) -> f64 {
        (self.armed / self.disarmed - 1.0) * 100.0
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let points: usize = args
        .next()
        .map(|a| a.parse().expect("points must be a number"))
        .unwrap_or(8_192);
    let sweeps: usize = args
        .next()
        .map(|a| a.parse().expect("sweeps must be a number"))
        .unwrap_or(8);
    let repeats: usize = args
        .next()
        .map(|a| a.parse().expect("repeats must be a number"))
        .unwrap_or(5);
    assert!(points > 0 && sweeps > 0 && repeats > 0);

    // The trace sink is process-global; this bench owns it for the whole
    // run. Start from a known-disarmed state whatever the environment
    // carried in.
    telemetry::clear_trace();
    let trace_path = std::env::temp_dir().join(format!(
        "archpredict_telemetry_overhead_{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&trace_path);

    let study = Study::MemorySystem;
    let space = study.space();
    let points = points.min(space.size());
    eprintln!(
        "telemetry_overhead: {points} points x {sweeps} sweeps (predict leg), \
         best of {repeats}, trace sink {}",
        trace_path.display()
    );

    // ---- Predict leg: the batched inference sweep. ----
    let mut rng = Xoshiro256::seed_from(2);
    let data: Dataset = sample_without_replacement(space.size(), 300, &mut rng)
        .into_iter()
        .map(|i| {
            let f = space.encode(&space.point(i));
            let t = 0.5 + 0.3 * f[0];
            Sample::new(f, t)
        })
        .collect();
    let config = TrainConfig {
        max_epochs: 100,
        ..TrainConfig::default()
    };
    let fit = fit_ensemble(&data, 10, &config, 3);
    let indices: Vec<usize> = (0..points).collect();
    // `sweeps` separate calls per timed region: each call is one
    // `infer.sweep` span, so the armed run pays `sweeps` JSONL appends —
    // the per-call cost is what the gate bounds, not one amortized line.
    let run_predict = || -> (f64, Vec<f64>) {
        let mut best = f64::INFINITY;
        let mut last = Vec::new();
        for _ in 0..repeats {
            let started = Instant::now();
            for _ in 0..sweeps {
                last = predict_indices(&fit.ensemble, &space, &indices, Parallelism::Fixed(1));
            }
            best = best.min(started.elapsed().as_secs_f64());
        }
        (best, last)
    };
    let (predict_disarmed, reference) = run_predict();
    telemetry::install_trace(&trace_path).expect("arm trace sink");
    let (predict_armed, armed_predictions) = run_predict();
    telemetry::clear_trace();
    assert_eq!(
        reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        armed_predictions
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        "arming the trace sink changed the predictions"
    );

    // ---- Sim leg: the cached simulation batch. ----
    let benchmark = archpredict_workloads::Benchmark::Gzip;
    let generator = archpredict_workloads::TraceGenerator::new(benchmark);
    let budget = SimBudget::spread(&generator, 2, 4_000, 8_000);
    let unique: Vec<usize> = {
        let n = 48.min(space.size());
        let stride = space.size() / n;
        (0..n).map(|i| i * stride).collect()
    };
    let mut sim_indices: Vec<usize> = Vec::new();
    for _ in 0..3 {
        sim_indices.extend_from_slice(&unique);
    }
    archpredict_stats::sampling::shuffle(&mut sim_indices, &mut rng);
    let run_sim = || -> (f64, SimStats) {
        let mut best = f64::INFINITY;
        let mut last = SimStats::default();
        for _ in 0..repeats {
            let cached = CachedEvaluator::with_parallelism(
                StudyEvaluator::with_budget(study, benchmark, budget.clone()),
                space.clone(),
                Parallelism::Fixed(1),
            );
            let mut stats = SimStats::default();
            let started = Instant::now();
            let results = cached.evaluate_batch(&space, &sim_indices, &mut stats);
            best = best.min(started.elapsed().as_secs_f64());
            assert!(results.iter().all(Result::is_ok));
            last = stats;
        }
        (best, last)
    };
    let (sim_disarmed, stats_disarmed) = run_sim();
    telemetry::install_trace(&trace_path).expect("re-arm trace sink");
    let (sim_armed, stats_armed) = run_sim();
    telemetry::clear_trace();
    assert_eq!(
        stats_disarmed.unique_simulations, stats_armed.unique_simulations,
        "arming the trace sink changed the simulation work"
    );
    assert_eq!(stats_disarmed.cache_hits, stats_armed.cache_hits);

    // The armed runs must have actually traced something: a sink that
    // silently dropped events would make this whole comparison vacuous.
    let traced = std::fs::read_to_string(&trace_path).expect("read trace file");
    let span_lines = traced
        .lines()
        .filter(|l| l.contains("\"event\":\"span\""))
        .count();
    assert!(
        span_lines >= sweeps,
        "armed runs emitted only {span_lines} span events (expected >= {sweeps})"
    );
    let _ = std::fs::remove_file(&trace_path);

    let legs = [
        Leg {
            name: "predict_sweep",
            disarmed: predict_disarmed,
            armed: predict_armed,
        },
        Leg {
            name: "sim_batch",
            disarmed: sim_disarmed,
            armed: sim_armed,
        },
    ];

    eprintln!(
        "{:>14} {:>12} {:>12} {:>9}",
        "leg", "disarmed s", "armed s", "overhead"
    );
    let mut table = String::from("leg,disarmed_seconds,armed_seconds,overhead_pct\n");
    for leg in &legs {
        eprintln!(
            "{:>14} {:>12.4} {:>12.4} {:>8.2}%",
            leg.name,
            leg.disarmed,
            leg.armed,
            leg.overhead_pct()
        );
        table.push_str(&format!(
            "{},{:.6},{:.6},{:.3}\n",
            leg.name,
            leg.disarmed,
            leg.armed,
            leg.overhead_pct()
        ));
    }
    write_artifact(Path::new("results/telemetry_overhead.csv"), &table);
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"points\": {points},\n  \"sweeps\": {sweeps},\n  \"repeats\": {repeats},\n  \
         \"span_events_observed\": {span_lines},\n  \
         \"max_overhead_pct\": {MAX_OVERHEAD_PCT},\n  \
         \"determinism\": \"bit_identical_armed_vs_disarmed\",\n  \"rows\": [\n"
    ));
    for (i, leg) in legs.iter().enumerate() {
        let comma = if i + 1 < legs.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"leg\": \"{}\", \"disarmed_seconds\": {:.6}, \"armed_seconds\": {:.6}, \
             \"overhead_pct\": {:.3}}}{comma}\n",
            leg.name,
            leg.disarmed,
            leg.armed,
            leg.overhead_pct()
        ));
    }
    json.push_str("  ]\n}\n");
    write_artifact(Path::new("results/telemetry_overhead.json"), &json);

    if points >= ASSERT_MIN_POINTS {
        for leg in &legs {
            let overhead = leg.overhead_pct();
            assert!(
                overhead < MAX_OVERHEAD_PCT,
                "{} leg: armed run is {overhead:.2}% slower than disarmed \
                 ({:.4}s vs {:.4}s); telemetry must stay under {MAX_OVERHEAD_PCT}%",
                leg.name,
                leg.armed,
                leg.disarmed
            );
        }
        eprintln!("overhead gate: both legs under {MAX_OVERHEAD_PCT}% (best of {repeats})");
    } else {
        eprintln!("(smoke run: <{ASSERT_MIN_POINTS} points, overhead assertion skipped)");
    }
}
