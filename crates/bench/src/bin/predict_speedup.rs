//! Batched-inference speedup table: the allocation-free sweep kernel
//! against the point-at-a-time baseline, then the parallel sweep at 1, 2,
//! 4, … worker threads up to the machine's core count — with bit-for-bit
//! determinism of the predictions checked at every thread count.
//!
//! With enough points the single-threaded batched sweep must beat the
//! point-at-a-time baseline (the kernel removes every per-point
//! allocation); tiny smoke runs only check determinism. Usage:
//!
//! ```text
//! cargo run --release --bin predict_speedup [points] [repeats]
//! ```

use archpredict::infer::predict_indices;
use archpredict::studies::Study;
use archpredict_ann::{fit_ensemble, Dataset, Parallelism, Sample, TrainConfig};
use archpredict_bench::write_artifact;
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::sample_without_replacement;
use std::path::Path;
use std::time::Instant;

/// Below this many swept points, skip the batched-beats-baseline assertion:
/// the fixed setup costs of one run dominate and the comparison is noise.
const SPEEDUP_ASSERT_MIN_POINTS: usize = 4_096;

fn main() {
    let mut args = std::env::args().skip(1);
    let points: usize = args
        .next()
        .map(|a| a.parse().expect("points must be a number"))
        .unwrap_or(16_384);
    let repeats: usize = args
        .next()
        .map(|a| a.parse().expect("repeats must be a number"))
        .unwrap_or(3);

    let space = Study::MemorySystem.space();
    let points = points.min(space.size());
    let mut rng = Xoshiro256::seed_from(2);
    // Synthetic targets are fine: inference cost is target-independent.
    let data: Dataset = sample_without_replacement(space.size(), 300, &mut rng)
        .into_iter()
        .map(|i| {
            let f = space.encode(&space.point(i));
            let t = 0.5 + 0.3 * f[0];
            Sample::new(f, t)
        })
        .collect();
    let config = TrainConfig {
        max_epochs: 100,
        ..TrainConfig::default()
    };
    let fit = fit_ensemble(&data, 10, &config, 3);
    let indices: Vec<usize> = (0..points).collect();

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "predict_speedup: {points} points, 10-member ensemble, best of {repeats} runs, \
         {cores} core(s)"
    );

    // Reference: the pre-kernel path, one fresh allocation set per point.
    let mut baseline = f64::INFINITY;
    let mut reference = Vec::new();
    for _ in 0..repeats {
        let started = Instant::now();
        reference = indices
            .iter()
            .map(|&i| fit.ensemble.predict(&space.encode(&space.point(i))))
            .collect();
        baseline = baseline.min(started.elapsed().as_secs_f64());
    }

    // Thread counts: 1, 2, 4, ... up to the core count.
    let mut thread_counts = vec![1usize];
    let mut t = 2;
    while t < cores {
        thread_counts.push(t);
        t *= 2;
    }
    if cores > 1 {
        thread_counts.push(cores);
    }

    let mut rows = vec![("point_at_a_time".to_string(), baseline, 1.0)];
    let mut batched_1 = f64::NAN;
    for &threads in &thread_counts {
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let started = Instant::now();
            let swept =
                predict_indices(&fit.ensemble, &space, &indices, Parallelism::Fixed(threads));
            best = best.min(started.elapsed().as_secs_f64());
            assert_eq!(
                reference, swept,
                "{threads}-thread sweep diverged from the point-at-a-time predictions"
            );
        }
        if threads == 1 {
            batched_1 = best;
        }
        rows.push((format!("batched_{threads}"), best, baseline / best));
    }

    let mut table = String::from("path,seconds,speedup_vs_baseline\n");
    eprintln!("{:>18} {:>10} {:>8}", "path", "seconds", "speedup");
    for (path, seconds, speedup) in &rows {
        eprintln!("{path:>18} {seconds:>10.4} {speedup:>7.2}x");
        table.push_str(&format!("{path},{seconds:.6},{speedup:.3}\n"));
    }
    eprintln!("(every thread count produced bit-for-bit identical predictions)");
    write_artifact(Path::new("results/predict_speedup.csv"), &table);

    if points >= SPEEDUP_ASSERT_MIN_POINTS {
        assert!(
            batched_1 <= baseline,
            "single-thread batched sweep ({batched_1:.4}s) should beat the point-at-a-time \
             baseline ({baseline:.4}s) at {points} points"
        );
    } else {
        eprintln!("(smoke run: <{SPEEDUP_ASSERT_MIN_POINTS} points, speedup assertion skipped)");
    }
}
