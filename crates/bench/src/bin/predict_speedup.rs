//! Batched-inference speedup table: the blocked matrix-matrix sweep kernel
//! against the pre-kernel point-at-a-time path, then the parallel sweep at
//! 1, 2, 4, … worker threads up to the machine's core count — with
//! bit-for-bit determinism of the predictions checked at every path.
//!
//! The baseline is the true pre-kernel code path, preserved as
//! `predict_reference`: the textbook one-output-at-a-time forward loops
//! with a fresh allocation set per point. Two faster paths are measured
//! against it: the production per-point path (`predict_with`, blocked
//! forward + reused scratch) and the batched blocked kernel sweep.
//!
//! With enough points the single-threaded batched sweep must beat the
//! baseline by at least [`MIN_BATCHED_SPEEDUP`]x — this assertion is *not*
//! gated on core count, so the gate arms on any machine; tiny smoke runs
//! only check determinism. Usage:
//!
//! ```text
//! cargo run --release --bin predict_speedup [points] [repeats] [--output-json]
//! ```
//!
//! `--output-json` writes `results/predict_speedup.json` (machine-readable
//! mirror of the CSV rows plus run metadata) alongside the CSV.

use archpredict::infer::predict_indices;
use archpredict::studies::Study;
use archpredict_ann::{fit_ensemble, Dataset, Parallelism, PredictBuffer, Sample, TrainConfig};
use archpredict_bench::write_artifact;
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::sample_without_replacement;
use std::path::Path;
use std::time::Instant;

/// Below this many swept points, skip the speedup assertions: the fixed
/// setup costs of one run dominate and the comparison is noise.
const SPEEDUP_ASSERT_MIN_POINTS: usize = 4_096;

/// Required single-thread speedup of the batched blocked-kernel sweep over
/// the pre-kernel point-at-a-time baseline. The kernels deliver well above
/// this on one core; if a change drags the sweep back toward ~1x scalar
/// throughput, this gate fails loudly.
const MIN_BATCHED_SPEEDUP: f64 = 4.0;

fn main() {
    let (flags, positional): (Vec<String>, Vec<String>) =
        std::env::args().skip(1).partition(|a| a.starts_with("--"));
    let output_json = flags.iter().any(|f| f == "--output-json");
    if let Some(unknown) = flags.iter().find(|f| *f != "--output-json") {
        panic!("unknown flag {unknown} (supported: --output-json)");
    }
    let mut args = positional.into_iter();
    let points: usize = args
        .next()
        .map(|a| a.parse().expect("points must be a number"))
        .unwrap_or(16_384);
    let repeats: usize = args
        .next()
        .map(|a| a.parse().expect("repeats must be a number"))
        .unwrap_or(3);

    let space = Study::MemorySystem.space();
    let points = points.min(space.size());
    let mut rng = Xoshiro256::seed_from(2);
    // Synthetic targets are fine: inference cost is target-independent.
    let data: Dataset = sample_without_replacement(space.size(), 300, &mut rng)
        .into_iter()
        .map(|i| {
            let f = space.encode(&space.point(i));
            let t = 0.5 + 0.3 * f[0];
            Sample::new(f, t)
        })
        .collect();
    let config = TrainConfig {
        max_epochs: 100,
        ..TrainConfig::default()
    };
    let fit = fit_ensemble(&data, 10, &config, 3);
    let indices: Vec<usize> = (0..points).collect();

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "predict_speedup: {points} points, 10-member ensemble, best of {repeats} runs, \
         {cores} core(s)"
    );

    // Baseline: the pre-kernel path — textbook scalar forward loops, one
    // fresh allocation set per point.
    let mut baseline = f64::INFINITY;
    let mut reference = Vec::new();
    for _ in 0..repeats {
        let started = Instant::now();
        reference = indices
            .iter()
            .map(|&i| {
                fit.ensemble
                    .predict_reference(&space.encode(&space.point(i)))
            })
            .collect();
        baseline = baseline.min(started.elapsed().as_secs_f64());
    }

    // Production per-point path: blocked forward kernel, reused scratch,
    // still one point per call.
    let mut point_blocked = f64::INFINITY;
    for _ in 0..repeats {
        let mut buf = PredictBuffer::default();
        let mut features = Vec::new();
        let started = Instant::now();
        let swept: Vec<f64> = indices
            .iter()
            .map(|&i| {
                features.clear();
                space.encode_into(&space.point(i), &mut features);
                fit.ensemble.predict_with(&features, &mut buf)
            })
            .collect();
        point_blocked = point_blocked.min(started.elapsed().as_secs_f64());
        assert_eq!(
            reference, swept,
            "per-point blocked path diverged from the reference predictions"
        );
    }

    // Thread counts: 1, 2, 4, ... up to the core count.
    let mut thread_counts = vec![1usize];
    let mut t = 2;
    while t < cores {
        thread_counts.push(t);
        t *= 2;
    }
    if cores > 1 {
        thread_counts.push(cores);
    }

    let mut rows = vec![
        ("point_at_a_time".to_string(), baseline, 1.0),
        (
            "point_blocked".to_string(),
            point_blocked,
            baseline / point_blocked,
        ),
    ];
    let mut batched_1 = f64::NAN;
    for &threads in &thread_counts {
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let started = Instant::now();
            let swept =
                predict_indices(&fit.ensemble, &space, &indices, Parallelism::Fixed(threads));
            best = best.min(started.elapsed().as_secs_f64());
            assert_eq!(
                reference, swept,
                "{threads}-thread sweep diverged from the point-at-a-time predictions"
            );
        }
        if threads == 1 {
            batched_1 = best;
        }
        rows.push((format!("batched_{threads}"), best, baseline / best));
    }

    let mut table = String::from("path,seconds,speedup_vs_baseline\n");
    eprintln!("{:>18} {:>10} {:>8}", "path", "seconds", "speedup");
    for (path, seconds, speedup) in &rows {
        eprintln!("{path:>18} {seconds:>10.4} {speedup:>7.2}x");
        table.push_str(&format!("{path},{seconds:.6},{speedup:.3}\n"));
    }
    eprintln!("(every path produced bit-for-bit identical predictions)");
    write_artifact(Path::new("results/predict_speedup.csv"), &table);

    if output_json {
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"study\": \"{}\",\n  \"points\": {points},\n  \"repeats\": {repeats},\n  \
             \"cores\": {cores},\n  \"ensemble_members\": 10,\n  \
             \"determinism\": \"bit_identical_all_paths\",\n  \"rows\": [\n",
            Study::MemorySystem.name(),
        ));
        for (i, (path, seconds, speedup)) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            json.push_str(&format!(
                "    {{\"path\": \"{path}\", \"seconds\": {seconds:.6}, \
                 \"speedup_vs_baseline\": {speedup:.3}}}{comma}\n"
            ));
        }
        json.push_str("  ]\n}\n");
        write_artifact(Path::new("results/predict_speedup.json"), &json);
    }

    if points >= SPEEDUP_ASSERT_MIN_POINTS {
        let speedup = baseline / batched_1;
        assert!(
            speedup >= MIN_BATCHED_SPEEDUP,
            "single-thread batched sweep is only {speedup:.2}x over the point-at-a-time \
             baseline ({batched_1:.4}s vs {baseline:.4}s) at {points} points; \
             the blocked kernels must deliver >= {MIN_BATCHED_SPEEDUP}x"
        );
        eprintln!("speedup gate: batched_1 is {speedup:.2}x (>= {MIN_BATCHED_SPEEDUP}x required)");
    } else {
        eprintln!("(smoke run: <{SPEEDUP_ASSERT_MIN_POINTS} points, speedup assertion skipped)");
    }
}
