//! Ablations of the paper's design choices (DESIGN.md §6), measured on
//! real study data with identical simulation budgets:
//!
//! 1. **percentage-error training** (inverse-target presentation) vs plain
//!    squared-error training;
//! 2. **cross-validation ensembling** vs a single network trained on all
//!    the data;
//! 3. **ANN** vs ordinary least-squares **linear regression** (§3's claim
//!    that the response surface needs nonlinear regression);
//! 4. **random sampling** vs the §7 **active-learning** extension.

use archpredict::campaign::{Encoder, PlainEncoder};
use archpredict::explorer::{Explorer, ExplorerConfig};
use archpredict::registry::ModelKey;
use archpredict::sampling::Strategy;
use archpredict::simulate::{CachedEvaluator, SimBudget, StudyEvaluator};
use archpredict::studies::Study;
use archpredict_ann::train::train_network;
use archpredict_ann::{fit_ensemble, Dataset, Sample, TrainConfig};
use archpredict_bench::ExperimentOpts;
use archpredict_stats::describe::Accumulator;
use archpredict_stats::json::Value;
use archpredict_stats::linear::LinearModel;
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::sample_without_replacement;
use archpredict_workloads::{Benchmark, TraceGenerator};

fn main() {
    let opts = ExperimentOpts::from_args(&[Benchmark::Twolf]);
    let benchmark = opts.apps[0];
    let study = Study::MemorySystem;
    let space = study.space();
    let generator = TraceGenerator::new(benchmark);
    let evaluator = CachedEvaluator::new(
        StudyEvaluator::with_budget(
            study,
            benchmark,
            SimBudget::spread(&generator, 3, 8_000, 16_000),
        ),
        space.clone(),
    );

    let mut rng = Xoshiro256::seed_from(opts.seed);
    let n_train = 400;
    let train_idx = sample_without_replacement(space.size(), n_train, &mut rng);
    let test_idx = sample_without_replacement(space.size(), opts.eval_points, &mut rng);
    eprintln!(
        "simulating {} train + {} test points for {benchmark}...",
        n_train,
        test_idx.len()
    );
    let enc = |i: usize| space.encode(&space.point(i));
    let eval = |i: usize| {
        evaluator
            .evaluate(&space.point(i))
            .expect("fault-free evaluator")
    };
    let data: Dataset = train_idx
        .iter()
        .map(|&i| Sample::new(enc(i), eval(i)))
        .collect();
    let test: Vec<(Vec<f64>, f64)> = test_idx.iter().map(|&i| (enc(i), eval(i))).collect();

    let mape = |predict: &dyn Fn(&[f64]) -> f64| -> (f64, f64) {
        let mut acc = Accumulator::new();
        for (x, t) in &test {
            acc.add(100.0 * (predict(x) - t).abs() / t);
        }
        (acc.mean(), acc.population_std_dev())
    };

    println!("== ablations: {benchmark} on the memory study, {n_train} training sims ==\n");

    // 1. Percentage-error training.
    let scaled = TrainConfig::scaled_to(n_train);
    for (label, pct) in [
        ("pct-error training (paper)", true),
        ("plain squared error", false),
    ] {
        let config = TrainConfig {
            percentage_error: pct,
            ..scaled
        };
        let fit = fit_ensemble(&data, 10, &config, opts.seed);
        let (mean, sd) = mape(&|x| fit.ensemble.predict(x));
        println!("{label:32} {mean:5.2}% ± {sd:.2}");
    }

    // 2. Ensemble vs single network (same total data; single net uses a
    //    held-aside 10% early-stopping split).
    println!();
    let fit = fit_ensemble(&data, 10, &scaled, opts.seed);
    let (mean, sd) = mape(&|x| fit.ensemble.predict(x));
    println!("{:32} {mean:5.2}% ± {sd:.2}", "10-fold CV ensemble (paper)");
    let samples = data.samples();
    let split = samples.len() * 9 / 10;
    let train_refs: Vec<&Sample> = samples[..split].iter().collect();
    let es_refs: Vec<&Sample> = samples[split..].iter().collect();
    let mut train_rng = Xoshiro256::seed_from(opts.seed ^ 1);
    let single = train_network(&train_refs, &es_refs, &scaled, &mut train_rng);
    let (mean, sd) = mape(&|x| single.predict(x));
    println!("{:32} {mean:5.2}% ± {sd:.2}", "single network");

    // 3. ANN vs linear regression.
    println!();
    let xs: Vec<Vec<f64>> = samples.iter().map(|s| s.features.clone()).collect();
    let ys: Vec<f64> = samples.iter().map(|s| s.target).collect();
    let linear = LinearModel::fit(&xs, &ys).expect("well-posed");
    let (mean, sd) = mape(&|x| linear.predict(x));
    println!("{:32} {mean:5.2}% ± {sd:.2}", "linear regression baseline");
    let (mean, sd) = mape(&|x| fit.ensemble.predict(x));
    println!("{:32} {mean:5.2}% ± {sd:.2}", "ANN ensemble (same data)");

    // 4. Random vs active-learning sampling at the same budget, routed
    //    through the model registry: a warm re-run reuses both persisted
    //    ensembles instead of re-running the explorers.
    println!();
    let registry = opts.registry();
    let fingerprint = PlainEncoder.fingerprint(&space);
    for (label, encoder, strategy) in [
        ("random sampling (paper)", "ablation", Strategy::Random),
        (
            "active learning (QBC, §7)",
            "ablation-qbc4",
            Strategy::Active { pool_factor: 4 },
        ),
    ] {
        let key = ModelKey::new(study.name(), encoder, benchmark.name(), opts.seed, n_train);
        let outcome = registry
            .get_or_fit(&key, fingerprint, || {
                let config = ExplorerConfig {
                    batch: 50,
                    target_error: 0.0,
                    max_samples: n_train,
                    train: scaled,
                    strategy,
                    seed: opts.seed,
                    ..ExplorerConfig::default()
                };
                let mut explorer = Explorer::new(&space, &evaluator, config);
                explorer.run();
                let ensemble = explorer
                    .ensemble()
                    .ok_or("explorer fit no ensemble")?
                    .clone();
                // The trained set rides along so warm runs can exclude it
                // from the error measurement exactly as a cold run would.
                let sampled = Value::Array(
                    explorer
                        .sampled_indices()
                        .iter()
                        .map(|&i| Value::num(i as f64))
                        .collect(),
                );
                Ok((ensemble, Value::Object(vec![("sampled".into(), sampled)])))
            })
            .unwrap_or_else(|e| panic!("registry {key}: {e}"));
        let trained: std::collections::HashSet<usize> = outcome
            .payload
            .get("sampled")
            .expect("payload has sampled set")
            .as_array()
            .expect("sampled is an array")
            .iter()
            .map(|v| v.as_usize().expect("sampled index"))
            .collect();
        let mut acc = Accumulator::new();
        for (&i, (x, t)) in test_idx.iter().zip(&test) {
            if !trained.contains(&i) {
                acc.add(100.0 * (outcome.model.predict(x) - t).abs() / t);
            }
        }
        println!(
            "{label:32} {:5.2}% ± {:.2}{}",
            acc.mean(),
            acc.population_std_dev(),
            if outcome.warm { "  (warm)" } else { "" }
        );
    }
}
