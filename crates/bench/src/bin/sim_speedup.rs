//! Batched-simulation speedup table: the deduplicating, sharded-cache
//! oracle against the naive point-at-a-time loop, the cached batch at
//! 1, 2, 4, … worker threads up to the machine's core count, and the
//! multi-process `ProcessPoolOracle` at 0/1/2/4 workers — with bit-for-bit
//! determinism of the results checked at every thread *and* worker count
//! (the determinism checks stay armed even on one core, where the speedup
//! assertions are skipped).
//!
//! The work list repeats each unique design point `dup_factor` times
//! (learning-curve workloads re-touch their training and evaluation sets
//! constantly), so even on one core the cached oracle must beat the naive
//! loop: it simulates each unique point once where the naive path
//! simulates every occurrence. Parallel speedup on top of that is asserted
//! only on machines with enough cores. Usage:
//!
//! ```text
//! cargo run --release --bin sim_speedup [unique_points] [dup_factor] [repeats] [--output-json]
//! ```
//!
//! `--output-json` writes `results/sim_speedup.json` (machine-readable
//! mirror of the CSV rows plus run metadata) alongside the CSV.

use archpredict::distributed::{locate_worker_binary, ProcessPoolOracle, WorkerSpec};
use archpredict::simulate::{
    CachedEvaluator, Oracle, PointEvaluator, SimBudget, SimStats, StudyEvaluator,
};
use archpredict::studies::Study;
use archpredict_ann::Parallelism;
use archpredict_bench::write_artifact;
use archpredict_stats::rng::Xoshiro256;
use archpredict_workloads::{Benchmark, TraceGenerator};
use std::path::Path;
use std::time::Instant;

/// Below this many total evaluations, skip the cached-beats-naive
/// assertion: fixed setup costs dominate and the comparison is noise.
const SPEEDUP_ASSERT_MIN_EVALS: usize = 96;

/// Parallel speedup is asserted only with at least this many cores (2-core
/// CI boxes show real but sub-threshold wins).
const PARALLEL_ASSERT_MIN_CORES: usize = 4;

fn main() {
    let (flags, positional): (Vec<String>, Vec<String>) =
        std::env::args().skip(1).partition(|a| a.starts_with("--"));
    let output_json = flags.iter().any(|f| f == "--output-json");
    if let Some(unknown) = flags.iter().find(|f| *f != "--output-json") {
        panic!("unknown flag {unknown} (supported: --output-json)");
    }
    let mut args = positional.into_iter();
    let unique_points: usize = args
        .next()
        .map(|a| a.parse().expect("unique_points must be a number"))
        .unwrap_or(48);
    let dup_factor: usize = args
        .next()
        .map(|a| a.parse().expect("dup_factor must be a number"))
        .unwrap_or(3);
    let repeats: usize = args
        .next()
        .map(|a| a.parse().expect("repeats must be a number"))
        .unwrap_or(3);
    assert!(unique_points > 0 && dup_factor > 0 && repeats > 0);

    let study = Study::MemorySystem;
    let space = study.space();
    let benchmark = Benchmark::Gzip;
    let generator = TraceGenerator::new(benchmark);
    let budget = SimBudget::spread(&generator, 2, 4_000, 8_000);
    let evaluator = || StudyEvaluator::with_budget(study, benchmark, budget.clone());

    // Work list: every unique point `dup_factor` times, shuffled so
    // duplicates land in different worker spans.
    let unique_points = unique_points.min(space.size());
    let stride = space.size() / unique_points;
    let unique: Vec<usize> = (0..unique_points).map(|i| i * stride).collect();
    let mut indices: Vec<usize> = Vec::with_capacity(unique_points * dup_factor);
    for _ in 0..dup_factor {
        indices.extend_from_slice(&unique);
    }
    let mut rng = Xoshiro256::seed_from(7);
    archpredict_stats::sampling::shuffle(&mut indices, &mut rng);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "sim_speedup: {} evaluations ({unique_points} unique × {dup_factor}), \
         best of {repeats} runs, {cores} core(s)",
        indices.len()
    );

    // Reference: the naive loop — every occurrence simulated, no cache.
    let naive_eval = evaluator();
    let mut baseline = f64::INFINITY;
    let mut reference = Vec::new();
    for _ in 0..repeats {
        let started = Instant::now();
        reference = indices
            .iter()
            .map(|&i| naive_eval.evaluate(&space.point(i)))
            .collect();
        baseline = baseline.min(started.elapsed().as_secs_f64());
    }

    // Thread counts: 1, 2, 4, ... up to the core count, plus Auto.
    let mut thread_counts = vec![1usize];
    let mut t = 2;
    while t < cores {
        thread_counts.push(t);
        t *= 2;
    }
    if cores > 1 {
        thread_counts.push(cores);
    }

    let mut rows = vec![("naive".to_string(), baseline, 1.0)];
    let mut cached_1 = f64::NAN;
    let mut run_cached = |label: String, parallelism: Parallelism| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            // A fresh cache each run: the timed work is one cold batch
            // (dedup + fan-out + inserts), not cache replay.
            let cached = CachedEvaluator::with_parallelism(evaluator(), space.clone(), parallelism);
            let mut stats = SimStats::default();
            let started = Instant::now();
            let results = cached.evaluate_batch(&space, &indices, &mut stats);
            best = best.min(started.elapsed().as_secs_f64());
            let results: Vec<f64> = results
                .into_iter()
                .map(|r| r.expect("fault-free evaluator"))
                .collect();
            assert_eq!(
                reference, results,
                "{label} cached batch diverged from the naive results"
            );
            assert_eq!(stats.unique_simulations, unique.len() as u64);
            assert_eq!(
                stats.cache_hits,
                (indices.len() - unique.len()) as u64,
                "in-batch duplicates must be served without simulating"
            );
        }
        rows.push((label, best, baseline / best));
        best
    };
    for &threads in &thread_counts {
        let best = run_cached(format!("cached_{threads}"), Parallelism::Fixed(threads));
        if threads == 1 {
            cached_1 = best;
        }
    }
    run_cached("cached_auto".to_string(), Parallelism::Auto);

    // Process-pool section: the distributed oracle over the same work
    // list, raw (no cache), at 0 (in-process fallback), 1, 2 and 4 worker
    // processes. Every count is checked bit-for-bit against the naive
    // reference — that check stays armed on any host, 1-core CI included;
    // only the speedup assertions below are core-gated.
    let mut pool_times: Vec<(usize, f64)> = Vec::new();
    let pool_spec = WorkerSpec::Study {
        study,
        benchmark,
        budget: budget.clone(),
    };
    let pool_available = locate_worker_binary().is_ok();
    if !pool_available {
        eprintln!(
            "sim_speedup: WARNING: skipping the process-pool section — \
             archpredict-worker not found (build with \
             `cargo build --release -p archpredict-worker` or set \
             ARCHPREDICT_WORKER_BIN)"
        );
    } else {
        for workers in [0usize, 1, 2, 4] {
            let pool = ProcessPoolOracle::with_workers(pool_spec.clone(), workers)
                .expect("worker binary located above");
            let mut best = f64::INFINITY;
            for run in 0..=repeats {
                let mut stats = SimStats::default();
                let started = Instant::now();
                let results = pool.evaluate_batch(&space, &indices, &mut stats);
                // Run 0 is an untimed warmup: it pays the one-off worker
                // spawn + handshake cost so the timed runs measure the
                // steady-state pipe protocol, same as a campaign sees.
                if run > 0 {
                    best = best.min(started.elapsed().as_secs_f64());
                }
                let values: Vec<f64> = results
                    .into_iter()
                    .map(|r| r.expect("fault-free evaluator"))
                    .collect();
                assert_eq!(
                    reference, values,
                    "pool_{workers} diverged from the naive results"
                );
                assert_eq!(pool.respawns(), 0, "pool_{workers} respawned a worker");
            }
            rows.push((format!("pool_{workers}"), best, baseline / best));
            pool_times.push((workers, best));
        }
        eprintln!("(every worker count produced bit-for-bit identical results)");
    }

    let mut table = String::from("path,seconds,speedup_vs_naive\n");
    eprintln!("{:>14} {:>10} {:>8}", "path", "seconds", "speedup");
    for (path, seconds, speedup) in &rows {
        eprintln!("{path:>14} {seconds:>10.4} {speedup:>7.2}x");
        table.push_str(&format!("{path},{seconds:.6},{speedup:.3}\n"));
    }
    eprintln!("(every thread count produced bit-for-bit identical results)");
    write_artifact(Path::new("results/sim_speedup.csv"), &table);
    if output_json {
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"benchmark\": \"{}\",\n  \"study\": \"{}\",\n  \"evaluations\": {},\n  \
             \"unique_points\": {},\n  \"dup_factor\": {},\n  \"repeats\": {},\n  \
             \"cores\": {},\n  \"pool_section\": {},\n  \
             \"determinism\": \"bit_identical_all_paths\",\n  \"rows\": [\n",
            benchmark.name(),
            study.name(),
            indices.len(),
            unique_points,
            dup_factor,
            repeats,
            cores,
            pool_available,
        ));
        for (i, (path, seconds, speedup)) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            json.push_str(&format!(
                "    {{\"path\": \"{path}\", \"seconds\": {seconds:.6}, \
                 \"speedup_vs_naive\": {speedup:.3}}}{comma}\n"
            ));
        }
        json.push_str("  ]\n}\n");
        write_artifact(Path::new("results/sim_speedup.json"), &json);
    }

    if indices.len() >= SPEEDUP_ASSERT_MIN_EVALS && dup_factor >= 2 {
        assert!(
            cached_1 <= baseline,
            "single-thread cached batch ({cached_1:.4}s) should beat the naive loop \
             ({baseline:.4}s): it simulates 1/{dup_factor} of the occurrences"
        );
    } else {
        eprintln!("(smoke run: cached-beats-naive assertion skipped)");
    }
    if cores >= PARALLEL_ASSERT_MIN_CORES && indices.len() >= SPEEDUP_ASSERT_MIN_EVALS {
        let cached_multi = rows
            .iter()
            .filter(|(p, ..)| p.starts_with("cached_") && p != "cached_1")
            .map(|&(_, s, _)| s)
            .fold(f64::INFINITY, f64::min);
        assert!(
            cached_multi < cached_1 / 1.5,
            "parallel cached batch ({cached_multi:.4}s) should be at least 1.5x the \
             single-thread cached path ({cached_1:.4}s) on {cores} cores"
        );
    } else {
        eprintln!("(parallel speedup assertion skipped: needs {PARALLEL_ASSERT_MIN_CORES}+ cores and a full run)");
    }
    if pool_available {
        let pool_at = |w: usize| {
            pool_times
                .iter()
                .find(|&&(workers, _)| workers == w)
                .map(|&(_, s)| s)
                .expect("pool row measured above")
        };
        if cores >= PARALLEL_ASSERT_MIN_CORES && indices.len() >= SPEEDUP_ASSERT_MIN_EVALS {
            let (pool_1, pool_4) = (pool_at(1), pool_at(4));
            assert!(
                pool_4 * 2.0 <= pool_1,
                "4-worker pool ({pool_4:.4}s) should be at least 2x the single-worker \
                 pool ({pool_1:.4}s) on {cores} cores"
            );
        } else {
            eprintln!(
                "(pool speedup assertion skipped: needs {PARALLEL_ASSERT_MIN_CORES}+ cores \
                 and a full run; determinism was still asserted at every worker count)"
            );
        }
    }
}
