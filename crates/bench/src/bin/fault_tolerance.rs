//! Fault-tolerance smoke gate: a quickstart-scale exploration driven
//! through the full fault-tolerant oracle stack
//! (`RetryingOracle<FaultInjectingOracle<CachedEvaluator<StudyEvaluator>>>`)
//! with a 10% injected fault rate. Asserts, with zero panics along the way:
//!
//! 1. every round still reaches its full sample budget — failed points are
//!    quarantined and replacements are drawn until the batch is whole;
//! 2. the learning-curve CSV (deterministic flavor, wall-clock columns
//!    excluded) is **bit-for-bit identical** at `Fixed(1)`, `Fixed(4)` and
//!    `Auto` parallelism — fault schedules, retries and resampling never
//!    depend on thread timing;
//! 3. a run killed after any round and resumed from its on-disk checkpoint
//!    produces the **byte-for-byte** same CSV as the uninterrupted run,
//!    even with a torn `.tmp` file left in the checkpoint directory;
//! 4. the quarantine survives persist/load round-trips;
//! 5. a pooled cross-application fit through the same faulted stack fills
//!    every application's quota and emits an identical deterministic CSV
//!    at every parallelism setting;
//! 6. the distributed stack (`RetryingOracle<CachedEvaluator<`
//!    `ProcessPoolOracle>>`) quarantines a deterministically crashing
//!    worker **identically at 0, 1 and 2 worker processes** — same error
//!    placements, same quarantine set, untouched batchmates — with the
//!    aborting worker respawned each attempt. Skipped with a loud warning
//!    if the `archpredict-worker` binary is not built.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p archpredict-bench --bin fault_tolerance \
//!     [batch] [rounds] [fault_percent]
//! ```

use archpredict::crossapp::CrossAppModel;
use archpredict::explorer::{Explorer, ExplorerConfig};
use archpredict::fault::{FaultConfig, FaultInjectingOracle};
use archpredict::report::LearningCurve;
use archpredict::simulate::{CachedEvaluator, RetryingOracle, SimBudget, SimStats, StudyEvaluator};
use archpredict::studies::Study;
use archpredict_ann::{Parallelism, TrainConfig};
use archpredict_bench::write_artifact;
use archpredict_workloads::{Benchmark, TraceGenerator};
use std::path::Path;

type Stack = RetryingOracle<FaultInjectingOracle<CachedEvaluator<StudyEvaluator>>>;

fn main() {
    let mut args = std::env::args().skip(1);
    let batch: usize = args
        .next()
        .map(|a| a.parse().expect("batch must be a number"))
        .unwrap_or(50);
    let rounds: usize = args
        .next()
        .map(|a| a.parse().expect("rounds must be a number"))
        .unwrap_or(3);
    let fault_percent: f64 = args
        .next()
        .map(|a| a.parse().expect("fault_percent must be a number"))
        .unwrap_or(10.0);
    assert!(batch > 0 && rounds > 0 && (0.0..100.0).contains(&fault_percent));

    let study = Study::MemorySystem;
    let space = study.space();
    let benchmark = Benchmark::Gzip;
    let generator = TraceGenerator::new(benchmark);
    let budget = SimBudget::spread(&generator, 2, 4_000, 8_000);

    let fault = FaultConfig {
        probability: fault_percent / 100.0,
        ..FaultConfig::default()
    };
    let stack = |parallelism: Parallelism| -> Stack {
        RetryingOracle::new(FaultInjectingOracle::with_config(
            CachedEvaluator::with_parallelism(
                StudyEvaluator::with_budget(study, benchmark, budget.clone()),
                space.clone(),
                parallelism,
            ),
            fault.clone(),
        ))
    };
    let config = |parallelism: Parallelism| ExplorerConfig {
        batch,
        target_error: 0.0,
        max_samples: batch * rounds,
        train: TrainConfig {
            max_epochs: 40,
            patience: 10,
            parallelism,
            ..TrainConfig::default()
        },
        seed: 0x1BEC,
        ..ExplorerConfig::default()
    };

    eprintln!(
        "fault_tolerance: {rounds} round(s) x {batch} points at {fault_percent}% \
         injected faults on the {} space",
        study.name()
    );

    // Gate 1+2: full runs at three parallelism settings; every round must
    // reach its budget and the deterministic CSVs must match bit-for-bit.
    let settings = [
        ("fixed_1", Parallelism::Fixed(1)),
        ("fixed_4", Parallelism::Fixed(4)),
        ("auto", Parallelism::Auto),
    ];
    let mut csvs: Vec<(String, String, SimStats)> = Vec::new();
    for &(label, parallelism) in &settings {
        let oracle = stack(parallelism);
        let mut explorer = Explorer::new(&space, &oracle, config(parallelism));
        let mut curve = LearningCurve::new(format!("{benchmark}"));
        let mut totals = SimStats::default();
        for round in 1..=rounds {
            let record = explorer.try_step().expect("step must not fail");
            assert_eq!(
                record.samples,
                batch * round,
                "[{label}] round {round} fell short of its budget \
                 (resampling must replace quarantined points)"
            );
            totals.merge(&record.simulation);
            let record = record.clone();
            curve.push(&record, None);
        }
        eprintln!(
            "  [{label:>7}] {} samples, {} failures, {} retries, {} quarantined, \
             {} resampled, {:.1}s virtual backoff",
            explorer.samples(),
            totals.failures,
            totals.retries,
            totals.quarantined,
            totals.resampled,
            oracle.virtual_backoff_seconds(),
        );
        assert!(
            totals.failures > 0,
            "[{label}] a {fault_percent}% fault rate over {} attempts injected nothing",
            batch * rounds
        );
        csvs.push((label.to_string(), curve.to_csv_deterministic(), totals));
    }
    for (label, csv, _) in &csvs[1..] {
        assert_eq!(
            &csvs[0].1, csv,
            "deterministic CSV diverged between fixed_1 and {label}"
        );
    }
    eprintln!("  deterministic CSVs identical across all parallelism settings");

    // Gate 3: kill-and-resume. A checkpointed run is dropped mid-study
    // (simulating `kill -9` between rounds; checkpoints are written
    // atomically after each round), then resumed from disk — with a torn
    // temp file planted in the checkpoint directory — and must reproduce
    // the uninterrupted run's CSV byte-for-byte.
    let ckpt_dir = Path::new("results/fault_tolerance/checkpoint");
    let _ = std::fs::remove_dir_all(ckpt_dir);
    let killed_after = rounds.div_ceil(2);
    {
        let oracle = stack(Parallelism::Auto);
        let mut explorer = Explorer::new(&space, &oracle, config(Parallelism::Auto));
        explorer.enable_checkpoints(ckpt_dir);
        for _ in 0..killed_after {
            explorer.try_step().expect("step must not fail");
        }
        // The explorer is dropped here without any shutdown path: the only
        // surviving state is the atomic per-round checkpoint.
    }
    std::fs::write(ckpt_dir.join("state.json.tmp"), b"{\"torn\":").expect("plant torn temp file");
    let oracle = stack(Parallelism::Auto);
    let mut resumed = Explorer::resume(&space, &oracle, config(Parallelism::Auto), ckpt_dir)
        .expect("resume from checkpoint");
    assert_eq!(resumed.samples(), batch * killed_after);
    for _ in killed_after..rounds {
        resumed.try_step().expect("step must not fail");
    }
    let mut curve = LearningCurve::new(format!("{benchmark}"));
    for round in resumed.history() {
        curve.push(round, None);
    }
    let auto_csv = &csvs.iter().find(|(l, ..)| l == "auto").expect("auto run").1;
    assert_eq!(
        auto_csv,
        &curve.to_csv_deterministic(),
        "kill after round {killed_after} + resume diverged from the uninterrupted run"
    );
    eprintln!("  kill after round {killed_after} + resume reproduced the CSV byte-for-byte");

    // Gate 4: quarantine persist/load round-trip.
    let quarantined = oracle.quarantined();
    let qpath = Path::new("results/fault_tolerance/quarantine.txt");
    oracle
        .persist_quarantine(qpath)
        .expect("persist quarantine");
    let fresh = stack(Parallelism::Auto);
    let loaded = fresh.load_quarantine(qpath).expect("load quarantine");
    assert_eq!(loaded, quarantined.len());
    assert_eq!(fresh.quarantined(), quarantined);
    eprintln!(
        "  quarantine of {} index(es) survived a persist/load round-trip",
        quarantined.len()
    );

    // Gate 5: cross-application determinism under the same faulted stack.
    // The pooled fit samples each application through the engine's
    // quarantine/resample loop; its single-round CSV must be identical at
    // every parallelism setting.
    let crossapp = |parallelism: Parallelism| -> (String, usize, SimStats) {
        let evaluators = vec![
            (benchmark, stack(parallelism)),
            (Benchmark::Mcf, {
                let generator = TraceGenerator::new(Benchmark::Mcf);
                let budget = SimBudget::spread(&generator, 2, 4_000, 8_000);
                RetryingOracle::new(FaultInjectingOracle::with_config(
                    CachedEvaluator::with_parallelism(
                        StudyEvaluator::with_budget(study, Benchmark::Mcf, budget),
                        space.clone(),
                        parallelism,
                    ),
                    fault.clone(),
                ))
            }),
        ];
        let train = TrainConfig {
            max_epochs: 40,
            patience: 10,
            parallelism,
            ..TrainConfig::default()
        };
        let model = CrossAppModel::fit(&space, &evaluators, batch, &train, 0x1BEC);
        let mut curve = LearningCurve::new("crossapp");
        curve.push(&model.round(), None);
        (
            curve.to_csv_deterministic(),
            model.samples,
            model.simulation,
        )
    };
    let (crossapp_csv, crossapp_samples, crossapp_stats) = crossapp(Parallelism::Fixed(1));
    assert_eq!(
        crossapp_samples,
        batch * 2,
        "crossapp fit fell short of its per-app quota under faults"
    );
    for &(label, parallelism) in &settings[1..] {
        let (csv, ..) = crossapp(parallelism);
        assert_eq!(
            crossapp_csv, csv,
            "crossapp deterministic CSV diverged between fixed_1 and {label}"
        );
    }
    eprintln!(
        "  crossapp fit: {} samples, {} failures, {} resampled — CSV identical \
         across all parallelism settings",
        crossapp_samples, crossapp_stats.failures, crossapp_stats.resampled
    );

    write_artifact(Path::new("results/fault_tolerance/curve.csv"), auto_csv);
    write_artifact(
        Path::new("results/fault_tolerance/crossapp_curve.csv"),
        &crossapp_csv,
    );

    // Gate 6: distributed crash/quarantine determinism. A SleepyEvaluator
    // worker that aborts at one index must produce the same results, the
    // same quarantine set and untouched batchmates whether the abort is a
    // real worker-process death (1 or 2 workers) or the in-process
    // fallback's `Err(Crashed)` (0 workers).
    if archpredict::distributed::locate_worker_binary().is_err() {
        eprintln!(
            "fault_tolerance: WARNING: distributed gate skipped — archpredict-worker \
             not found (build with `cargo build --release -p archpredict-worker`)"
        );
    } else {
        use archpredict::distributed::{ProcessPoolOracle, WorkerSpec};
        use archpredict::simulate::{Oracle, SimError};
        let crash_index = 4_321usize;
        let spec = WorkerSpec::Sleepy {
            study,
            sleep_micros: 0,
            crash_index: Some(crash_index as u64),
            nan_index: None,
        };
        let indices = [3usize, crash_index, 77, 9_000, 15_000];
        let run = |workers: usize| {
            let pool = ProcessPoolOracle::with_workers(spec.clone(), workers)
                .expect("worker binary located above");
            let oracle = RetryingOracle::new(CachedEvaluator::new(pool, space.clone()));
            let mut stats = SimStats::default();
            let first = oracle.evaluate_batch(&space, &indices, &mut stats);
            let second = oracle.evaluate_batch(&space, &indices, &mut stats);
            let respawns = oracle.inner().inner().respawns();
            (
                first
                    .iter()
                    .map(|r| r.map(f64::to_bits))
                    .collect::<Vec<_>>(),
                second
                    .iter()
                    .map(|r| r.map(f64::to_bits))
                    .collect::<Vec<_>>(),
                oracle.quarantined(),
                respawns,
            )
        };
        let (first_0, second_0, quarantined_0, _) = run(0);
        assert_eq!(first_0[1], Err(SimError::Crashed));
        assert_eq!(second_0[1], Err(SimError::Quarantined));
        assert_eq!(quarantined_0, vec![crash_index]);
        assert!(
            first_0.iter().enumerate().all(|(i, r)| i == 1 || r.is_ok()),
            "a crashing index poisoned its batchmates: {first_0:?}"
        );
        for workers in [1usize, 2] {
            let (first, second, quarantined, respawns) = run(workers);
            assert_eq!(
                first_0, first,
                "distributed crash results diverged at {workers} workers"
            );
            assert_eq!(second_0, second);
            assert_eq!(quarantined_0, quarantined);
            assert!(
                respawns >= 1,
                "the aborting worker was never respawned at {workers} workers"
            );
        }
        eprintln!(
            "  distributed crash quarantined identically at 0, 1 and 2 workers \
             (batchmates untouched, dead workers respawned)"
        );
    }
    eprintln!("fault_tolerance: all gates passed");
}
