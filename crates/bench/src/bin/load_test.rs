//! Serving-layer load generator: spawns a real `archpredict-served`
//! daemon, fits a quick-budget study through it, then hammers `/predict`
//! from concurrent clients, reporting p50/p99 request latency and
//! sustained predictions per second per client count — and asserting that
//! every served prediction is **bit-for-bit identical** to a direct local
//! [`archpredict::infer::predict_indices`] sweep over the same registry
//! artifact. Doubles as the CI smoke gate for the daemon.
//!
//! ```text
//! cargo run --release --bin load_test -- [--clients 1,4,16] [--requests N]
//!     [--chunk N] [--budget N] [--root DIR] [--output-json]
//! ```
//!
//! `--output-json` writes `results/load_test.json` (machine-readable
//! mirror of the CSV rows plus run metadata) alongside the CSV.

use archpredict::campaign::CampaignConfig;
use archpredict::infer;
use archpredict::registry::{Registry, StudyFitSpec};
use archpredict::serve::{http_request, http_request_text};
use archpredict::studies::Study;
use archpredict_ann::Parallelism;
use archpredict_bench::{locate_served_binary, write_artifact, Daemon};
use archpredict_workloads::Benchmark;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::Path;
use std::time::Instant;

/// Counters the `/metrics` smoke gate requires by name: the serving
/// funnel plus the inference and registry work it fans into. Names are
/// part of the scrape contract — renaming one breaks dashboards, so it
/// breaks this gate first.
const REQUIRED_METRICS: &[&str] = &[
    "serve.requests",
    "serve.predictions",
    "serve.predict_batches",
    "serve.coalesced_jobs",
    "serve.model_cache_hits",
    "serve.model_cache_misses",
    "serve.errors",
    "infer.sweeps",
    "infer.points",
    "registry.fits",
];

/// Scrapes `GET /metrics` and parses the stable text format into a
/// name → value map, asserting the versioned header is intact.
fn scrape_metrics(addr: SocketAddr) -> BTreeMap<String, u64> {
    let (status, text) = http_request_text(addr, "GET", "/metrics", None).expect("metrics scrape");
    assert_eq!(status, 200, "metrics scrape failed: {text}");
    let mut lines = text.lines();
    assert_eq!(
        lines.next(),
        Some("# archpredict metrics v1"),
        "metrics header is versioned"
    );
    lines
        .map(|line| {
            let (name, value) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("malformed metrics line {line:?}"));
            let value: u64 = value
                .parse()
                .unwrap_or_else(|_| panic!("non-integer counter in {line:?}"));
            (name.to_string(), value)
        })
        .collect()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let rank = ((sorted_ms.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted_ms[rank]
}

fn main() {
    let mut clients = vec![1usize, 4, 16];
    let mut requests = 25usize;
    let mut chunk = 64usize;
    let mut budget = 30usize;
    let mut root = String::from("results/registry");
    let mut output_json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("flag {name} needs a value"))
        };
        match arg.as_str() {
            "--clients" => {
                clients = value("--clients")
                    .split(',')
                    .map(|s| s.trim().parse().expect("client counts are numbers"))
                    .collect();
            }
            "--requests" => requests = value("--requests").parse().expect("number"),
            "--chunk" => chunk = value("--chunk").parse().expect("number"),
            "--budget" => budget = value("--budget").parse().expect("number"),
            "--root" => root = value("--root"),
            "--output-json" => output_json = true,
            other => panic!("unknown flag {other}"),
        }
    }

    let study = Study::MemorySystem;
    let benchmark = Benchmark::Gzip;
    let seed: u64 = 0x10AD;
    let batch = budget.div_ceil(2);
    let spec = StudyFitSpec {
        study,
        benchmark,
        config: CampaignConfig {
            seed,
            max_samples: budget,
            batch,
            ..CampaignConfig::default()
        },
        quick: true,
    };
    let space = study.space();

    // Spawn the real daemon on an ephemeral port and scrape its address.
    let bin = locate_served_binary().expect("daemon binary");
    let args: Vec<String> = ["--addr", "127.0.0.1:0", "--root", &root, "--tick-ms", "1"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let mut daemon = Daemon::spawn(&bin, &args, None).expect("spawn archpredict-served");
    let addr = daemon.addr();
    eprintln!("load_test: daemon at {addr} (root {root})");

    // Fit (or warm-load) the model through the daemon.
    let fit_body = format!(
        r#"{{"study":"{}","app":"{}","seed":"{seed:x}","budget":{budget},"batch":{batch},"quick":true}}"#,
        study.name(),
        benchmark.name()
    );
    let fit_started = Instant::now();
    let (status, fit) = http_request(addr, "POST", "/fit", Some(&fit_body)).expect("fit request");
    assert_eq!(status, 200, "fit failed: {}", fit.to_json());
    let warm = fit.get("warm").unwrap().as_bool().unwrap();
    eprintln!(
        "load_test: model {} in {:.2}s ({})",
        if warm { "loaded warm" } else { "fitted cold" },
        fit_started.elapsed().as_secs_f64(),
        fit.get("model").unwrap().as_str().unwrap()
    );

    // Bit-identity gate: the served sweep must match a direct local sweep
    // over the same registry artifact, index for index.
    let registry = Registry::open(&root).expect("open registry");
    let outcome = registry
        .get(&spec.key(), spec.fingerprint())
        .expect("read registry")
        .expect("artifact just fitted");
    let stride = (space.size() / chunk).max(1);
    let probe: Vec<usize> = (0..chunk).map(|i| (i * stride) % space.size()).collect();
    let local = infer::predict_indices(&outcome.model, &space, &probe, Parallelism::Auto);
    let indices_json = format!(
        "[{}]",
        probe
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(",")
    );
    let predict_body = format!(
        r#"{{"study":"{}","app":"{}","seed":"{seed:x}","budget":{budget},"batch":{batch},"quick":true,"indices":{indices_json}}}"#,
        study.name(),
        benchmark.name()
    );
    let (status, reply) =
        http_request(addr, "POST", "/predict", Some(&predict_body)).expect("predict request");
    assert_eq!(status, 200, "predict failed: {}", reply.to_json());
    let served: Vec<f64> = reply
        .get("predictions")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect();
    assert_eq!(served.len(), local.len());
    for (i, (s, l)) in served.iter().zip(&local).enumerate() {
        assert_eq!(
            s.to_bits(),
            l.to_bits(),
            "served prediction for index {} diverged: {s} != {l}",
            probe[i]
        );
    }
    eprintln!(
        "load_test: {} served predictions bit-identical to local inference",
        served.len()
    );

    // First metrics scrape, taken while the daemon already holds real
    // traffic state (fit + bit-identity probe above): every required
    // counter must exist before the load phases begin.
    let before = scrape_metrics(addr);
    for name in REQUIRED_METRICS {
        assert!(
            before.contains_key(*name),
            "/metrics is missing required counter {name}"
        );
    }

    // Load phases.
    let mut rows: Vec<(usize, usize, f64, f64, f64)> = Vec::new();
    eprintln!(
        "{:>8} {:>9} {:>9} {:>9} {:>13}",
        "clients", "requests", "p50 ms", "p99 ms", "predictions/s"
    );
    for &n_clients in &clients {
        let phase_started = Instant::now();
        let latencies: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_clients)
                .map(|c| {
                    let body = &predict_body;
                    scope.spawn(move || {
                        let mut mine = Vec::with_capacity(requests);
                        for _ in 0..requests {
                            let started = Instant::now();
                            let (status, _) = http_request(addr, "POST", "/predict", Some(body))
                                .unwrap_or_else(|e| panic!("client {c}: {e}"));
                            assert_eq!(status, 200);
                            mine.push(started.elapsed().as_secs_f64() * 1e3);
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        let wall = phase_started.elapsed().as_secs_f64();
        let mut sorted = latencies.clone();
        sorted.sort_by(f64::total_cmp);
        let p50 = percentile(&sorted, 50.0);
        let p99 = percentile(&sorted, 99.0);
        let throughput = (latencies.len() * chunk) as f64 / wall;
        eprintln!(
            "{n_clients:>8} {:>9} {p50:>9.2} {p99:>9.2} {throughput:>13.0}",
            latencies.len()
        );
        rows.push((n_clients, latencies.len(), p50, p99, throughput));
    }

    // Second scrape after the load ran through: counters are cumulative,
    // so every one must be monotonic, and the serving funnel must have
    // visibly moved.
    let after = scrape_metrics(addr);
    for (name, &was) in &before {
        let now = *after
            .get(name)
            .unwrap_or_else(|| panic!("counter {name} disappeared between scrapes"));
        assert!(
            now >= was,
            "counter {name} went backwards across scrapes: {was} -> {now}"
        );
    }
    assert!(
        after["serve.requests"] > before["serve.requests"],
        "load phases did not move serve.requests"
    );
    assert!(
        after["serve.predictions"] > before["serve.predictions"],
        "load phases did not move serve.predictions"
    );
    eprintln!(
        "load_test: /metrics smoke passed ({} counters, all monotonic)",
        after.len()
    );

    // Coalescing telemetry straight from the daemon.
    let (_, stats) = http_request(addr, "GET", "/stats", None).expect("stats");
    eprintln!(
        "load_test: {} predict batches served {} requests ({} predictions)",
        stats.get("predict_batches").unwrap().as_u64().unwrap(),
        stats.get("coalesced_jobs").unwrap().as_u64().unwrap(),
        stats.get("predictions").unwrap().as_u64().unwrap(),
    );

    let (status, _) = http_request(addr, "POST", "/shutdown", None).expect("shutdown");
    assert_eq!(status, 200);
    let exit = daemon.wait().expect("reap daemon");
    assert!(exit.success(), "daemon drained but exited {exit}");

    let mut table = String::from("clients,requests,p50_ms,p99_ms,predictions_per_sec\n");
    for (c, n, p50, p99, tput) in &rows {
        table.push_str(&format!("{c},{n},{p50:.3},{p99:.3},{tput:.0}\n"));
    }
    write_artifact(Path::new("results/load_test.csv"), &table);
    if output_json {
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"benchmark\": \"{}\",\n  \"study\": \"{}\",\n  \"budget\": {budget},\n  \
             \"chunk\": {chunk},\n  \"warm_start\": {warm},\n  \
             \"determinism\": \"served_bit_identical_to_local_inference\",\n  \"rows\": [\n",
            benchmark.name(),
            study.name(),
        ));
        for (i, (c, n, p50, p99, tput)) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            json.push_str(&format!(
                "    {{\"clients\": {c}, \"requests\": {n}, \"p50_ms\": {p50:.3}, \
                 \"p99_ms\": {p99:.3}, \"predictions_per_sec\": {tput:.0}}}{comma}\n"
            ));
        }
        json.push_str("  ]\n}\n");
        write_artifact(Path::new("results/load_test.json"), &json);
    }
}
