//! Prints the design-space definitions and sizes (Tables 4.1 / 4.2).

use archpredict::studies::Study;
use archpredict::ParamKind;

fn main() {
    for study in Study::ALL {
        let space = study.space();
        println!(
            "== {} study: {} design points ==",
            study.name(),
            space.size()
        );
        for p in space.params() {
            let desc = match p.kind() {
                ParamKind::Cardinal(v) => format!("cardinal {v:?}"),
                ParamKind::Nominal(v) => format!("nominal {v:?}"),
                ParamKind::Boolean => "boolean".to_string(),
                ParamKind::LinkedCardinal { parent, choices } => format!(
                    "linked(parent={}) {choices:?}",
                    space.params()[*parent].name()
                ),
            };
            println!("  {:20} {} levels: {}", p.name(), p.levels(), desc);
        }
        println!();
    }
    let mem = Study::MemorySystem.space().size();
    let proc = Study::Processor.space().size();
    println!(
        "memory    study: {mem} points/app x 8 apps = {} simulations",
        mem * 8
    );
    println!(
        "processor study: {proc} points/app x 8 apps = {} simulations",
        proc * 8
    );
    println!(
        "total full-factorial cost: {} simulations (paper: 'over 300K')",
        (mem + proc) * 8
    );
}
