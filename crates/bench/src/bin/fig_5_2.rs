//! Figure 5.2 (and A.2 with `--apps all`): estimated vs true mean and
//! standard deviation of percentage error on the MemorySystem study.

use archpredict::studies::Study;
use archpredict_bench::{curve_for, CurveOpts, ExperimentOpts};
use archpredict_workloads::Benchmark;

fn main() {
    let opts = ExperimentOpts::from_args(&Benchmark::FEATURED);
    let study = Study::MemorySystem;
    let mut csv = String::new();
    for &benchmark in &opts.apps {
        let result = curve_for(&CurveOpts {
            study,
            benchmark,
            batch: opts.batch,
            max_samples: opts.max_samples,
            eval_points: opts.eval_points,
            simpoint: false,
            seed: opts.seed,
            cache_dir: Some(format!("{}/simcache", opts.out_dir)),
        });
        println!("{}", result.curve.to_table());
        // Report the estimate's tracking quality, the figure's point.
        let worst_gap = result
            .curve
            .points
            .iter()
            .filter_map(|p| p.true_mean.map(|t| (p.estimated_mean - t).abs()))
            .fold(0.0_f64, f64::max);
        println!("  worst |estimate - true| gap: {worst_gap:.2}%\n");
        csv.push_str(&result.curve.to_csv());
    }
    archpredict_bench::runner::write_artifact(&opts.out_path("fig_5_2.csv"), &csv);
}
