//! Shared experiment logic behind the table/figure binaries.
//!
//! The registry-backed entrypoints ([`registered_curve_for`],
//! [`run_figure`]) are what the figure binaries call: each learning curve
//! is keyed in the model registry by what produced it, the final ensemble
//! is persisted as the artifact, and the whole curve rides along as the
//! entry's payload — so a warm re-run of a figure binary performs **zero
//! fits and zero simulations** (assert via [`StudyCurve::warm`] and
//! [`Registry::fits_performed`]).

use archpredict::campaign::{seed_stream, Encoder, PlainEncoder};
use archpredict::explorer::{Explorer, ExplorerConfig, TrueError};
use archpredict::registry::{ModelKey, Registry};
use archpredict::report::LearningCurve;
use archpredict::simulate::{
    CachedEvaluator, Oracle, PointEvaluator, SimBudget, SimPointEvaluator, SimStats, StudyEvaluator,
};
use archpredict::studies::Study;
use archpredict_ann::{Ensemble, Parallelism, TrainConfig};
use archpredict_stats::describe::Accumulator;
use archpredict_stats::json::{JsonError, Value};
use archpredict_stats::rng::Xoshiro256;
use archpredict_workloads::{Benchmark, TraceGenerator};
use std::path::Path;

/// SimPoint profiling/simulation interval length used by §5.3 experiments.
pub const SIMPOINT_INTERVAL_LEN: usize = 4_000;
/// SimPoint maximum cluster count ("maxK").
pub const SIMPOINT_MAX_K: usize = 16;

/// Options for one application × study learning-curve run.
#[derive(Debug, Clone, PartialEq)]
pub struct CurveOpts {
    /// Which study's space to explore.
    pub study: Study,
    /// Which application to model.
    pub benchmark: Benchmark,
    /// Simulations per refinement round.
    pub batch: usize,
    /// Final training-set size.
    pub max_samples: usize,
    /// Held-out points for true-error measurement (0 = skip).
    pub eval_points: usize,
    /// Train on SimPoint-estimated (noisy) results instead of full
    /// simulations (§5.3); truth is always full simulation.
    pub simpoint: bool,
    /// Master seed.
    pub seed: u64,
    /// Directory for the persistent simulation cache (`None` = in-memory).
    pub cache_dir: Option<String>,
    /// Use the quick simulation budget ([`SimBudget::quick`]) — for tests
    /// and smoke gates; keyed separately in the registry.
    pub quick: bool,
}

impl CurveOpts {
    /// Standard options for an application/study pair.
    pub fn new(study: Study, benchmark: Benchmark) -> Self {
        Self {
            study,
            benchmark,
            batch: 50,
            max_samples: 950,
            eval_points: 300,
            simpoint: false,
            seed: 0x1BEC,
            cache_dir: Some("results/simcache".into()),
            quick: false,
        }
    }

    /// Toggles SimPoint-estimated training (builder style).
    pub fn with_simpoint(mut self, simpoint: bool) -> Self {
        self.simpoint = simpoint;
        self
    }

    /// Overrides the final training-set size (builder style).
    pub fn with_max_samples(mut self, max_samples: usize) -> Self {
        self.max_samples = max_samples;
        self
    }

    /// Toggles the quick simulation budget (builder style).
    pub fn with_quick(mut self, quick: bool) -> Self {
        self.quick = quick;
        self
    }

    /// The registry key for this curve run. The encoder string carries
    /// every pipeline knob that changes the artifact beyond the key's
    /// seed/budget fields: batch size, held-out count, SimPoint training,
    /// quick budget.
    pub fn key(&self) -> ModelKey {
        let mut encoder = format!("curve-b{}-e{}", self.batch, self.eval_points);
        if self.simpoint {
            encoder.push_str("-sp");
        }
        if self.quick {
            encoder.push_str("-quick");
        }
        ModelKey::new(
            self.study.name(),
            encoder,
            self.benchmark.name(),
            self.seed,
            self.max_samples,
        )
    }

    /// The space/encoder fingerprint this curve's artifact is stamped with.
    pub fn fingerprint(&self) -> u64 {
        PlainEncoder.fingerprint(&self.study.space())
    }
}

/// A finished learning-curve run with its simulation accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyCurve {
    /// The curve (estimated + true error per round).
    pub curve: LearningCurve,
    /// Design-space size.
    pub space_size: usize,
    /// Instructions one *training* evaluation simulates.
    pub instructions_per_training_eval: u64,
    /// Instructions one *full* (truth) evaluation simulates.
    pub instructions_per_full_eval: u64,
    /// `true` when this result was reconstructed from a warm registry
    /// entry — zero fits and zero simulations were performed.
    pub warm: bool,
}

fn truth_budget(study: Study, benchmark: Benchmark, simpoint: bool, quick: bool) -> StudyEvaluator {
    let generator = TraceGenerator::new(benchmark);
    let budget = if simpoint {
        // Truth for SimPoint experiments is the whole program at the
        // SimPoint interval length (the quantity SimPoint estimates).
        let warmup = (SIMPOINT_INTERVAL_LEN / 3) as u64;
        SimBudget {
            warmup,
            measured: SIMPOINT_INTERVAL_LEN as u64 - warmup,
            intervals: (0..generator.num_intervals()).collect(),
        }
    } else if quick {
        SimBudget::quick(&generator)
    } else {
        SimBudget::spread(&generator, 3, 8_000, 16_000)
    };
    StudyEvaluator::with_budget(study, benchmark, budget)
}

/// Runs one application × study learning curve: explore with batches,
/// recording the cross-validation estimate and the measured true error on
/// a fixed held-out set after every round. Always cold — the registry
/// entrypoint [`registered_curve_for`] wraps this with load-or-fit.
pub fn curve_for(opts: &CurveOpts) -> StudyCurve {
    curve_for_cold(opts).0
}

/// The cold path: runs the curve and also returns the final ensemble (the
/// artifact [`registered_curve_for`] persists).
fn curve_for_cold(opts: &CurveOpts) -> (StudyCurve, Option<Ensemble>) {
    let space = opts.study.space();
    let truth = CachedEvaluator::new(
        truth_budget(opts.study, opts.benchmark, opts.simpoint, opts.quick),
        space.clone(),
    );
    let cache_tag = format!(
        "{}_{}_{}truth",
        opts.study.name(),
        opts.benchmark.name(),
        if opts.simpoint { "sp_" } else { "" }
    );
    load_cache(&truth, opts.cache_dir.as_deref(), &cache_tag);

    let label = format!(
        "{} ({}{})",
        opts.benchmark.name(),
        opts.study.name(),
        if opts.simpoint { "/ANN+SimPoint" } else { "" }
    );
    let mut curve = LearningCurve::new(label);

    // Fixed held-out evaluation set, disjoint from anything trained on by
    // construction (the explorer's sampler and this RNG are decorrelated
    // streams of the audited seed map; overlaps are filtered after
    // exploration).
    let mut eval_rng = Xoshiro256::seed_from(opts.seed).derive(seed_stream::BENCH_EVAL);
    let eval_set: Vec<usize> = archpredict_stats::sampling::sample_without_replacement(
        space.size(),
        opts.eval_points.min(space.size()),
        &mut eval_rng,
    );

    let explorer_config = |train: TrainConfig| ExplorerConfig {
        batch: opts.batch,
        folds: 10,
        target_error: 0.0, // run to the sample cap; curves want every round
        max_samples: opts.max_samples,
        train,
        seed: opts.seed,
        ..ExplorerConfig::default()
    };

    let finish = |curve: LearningCurve, training_instr: u64| -> StudyCurve {
        StudyCurve {
            curve,
            space_size: space.size(),
            instructions_per_training_eval: training_instr,
            instructions_per_full_eval: truth.inner().instructions_per_evaluation(),
            warm: false,
        }
    };

    if opts.simpoint {
        let training = CachedEvaluator::new(
            SimPointEvaluator::new(
                opts.study,
                opts.benchmark,
                SIMPOINT_INTERVAL_LEN,
                SIMPOINT_MAX_K,
            ),
            space.clone(),
        );
        let train_tag = format!("{}_{}_sp_train", opts.study.name(), opts.benchmark.name());
        load_cache(&training, opts.cache_dir.as_deref(), &train_tag);
        let per_eval = training.inner().instructions_per_evaluation();

        let mut explorer =
            Explorer::new(&space, &training, explorer_config(TrainConfig::default()));
        run_curve(&mut explorer, &truth, &eval_set, opts, &mut curve);
        let ensemble = explorer.ensemble().cloned();

        save_cache(&training, opts.cache_dir.as_deref(), &train_tag);
        save_cache(&truth, opts.cache_dir.as_deref(), &cache_tag);
        (finish(curve, per_eval), ensemble)
    } else {
        let per_eval = truth.inner().instructions_per_evaluation();
        let mut explorer = Explorer::new(&space, &truth, explorer_config(TrainConfig::default()));
        run_curve(&mut explorer, &truth, &eval_set, opts, &mut curve);
        let ensemble = explorer.ensemble().cloned();
        save_cache(&truth, opts.cache_dir.as_deref(), &cache_tag);
        (finish(curve, per_eval), ensemble)
    }
}

/// Serializes a finished curve as a registry payload.
fn study_curve_payload(result: &StudyCurve) -> Value {
    Value::Object(vec![
        ("curve".into(), result.curve.to_json_value()),
        ("space_size".into(), Value::num(result.space_size as f64)),
        (
            "instructions_per_training_eval".into(),
            Value::num(result.instructions_per_training_eval as f64),
        ),
        (
            "instructions_per_full_eval".into(),
            Value::num(result.instructions_per_full_eval as f64),
        ),
    ])
}

/// Reconstructs a [`StudyCurve`] from a warm registry payload.
fn study_curve_from_payload(payload: &Value, warm: bool) -> Result<StudyCurve, JsonError> {
    Ok(StudyCurve {
        curve: LearningCurve::from_json_value(payload.get("curve")?)?,
        space_size: payload.get("space_size")?.as_usize()?,
        instructions_per_training_eval: payload.get("instructions_per_training_eval")?.as_u64()?,
        instructions_per_full_eval: payload.get("instructions_per_full_eval")?.as_u64()?,
        warm,
    })
}

/// Load-or-run a learning curve through the model registry: a warm hit
/// reconstructs the whole curve from the persisted payload — zero fits,
/// zero simulations — while a miss runs [`curve_for`] once, persisting the
/// final ensemble and the curve for every future caller.
///
/// # Panics
///
/// Panics on registry I/O/corruption or when the cold run produces no
/// ensemble (acceptable in experiment binaries).
pub fn registered_curve_for(registry: &Registry, opts: &CurveOpts) -> StudyCurve {
    let key = opts.key();
    let outcome = registry
        .get_or_fit(&key, opts.fingerprint(), || {
            let (result, ensemble) = curve_for_cold(opts);
            let ensemble = ensemble.ok_or("curve run produced no ensemble")?;
            Ok((ensemble, study_curve_payload(&result)))
        })
        .unwrap_or_else(|e| panic!("registry {key}: {e}"));
    study_curve_from_payload(&outcome.payload, outcome.warm)
        .unwrap_or_else(|e| panic!("registry payload for {key} unreadable: {e}"))
}

/// Runs each curve through `registry`, printing its table and warm/cold
/// provenance. The shared loop body of every figure binary.
pub fn run_curves(registry: &Registry, all_opts: &[CurveOpts]) -> Vec<StudyCurve> {
    all_opts
        .iter()
        .map(|opts| {
            let result = registered_curve_for(registry, opts);
            println!("{}", result.curve.to_table());
            println!(
                "  [{}] {}\n",
                opts.key().slug(),
                if result.warm {
                    "warm from registry (0 fits, 0 simulations)"
                } else {
                    "cold run, persisted to registry"
                }
            );
            result
        })
        .collect()
}

/// The whole figure pipeline: run every curve through the registry,
/// invoke `inspect` per curve (figure-specific commentary), concatenate
/// the curve CSVs and write them to `out`. Returns the curves for
/// further analysis.
pub fn run_figure(
    registry: &Registry,
    all_opts: &[CurveOpts],
    out: &Path,
    mut inspect: impl FnMut(&StudyCurve),
) -> Vec<StudyCurve> {
    let results = run_curves(registry, all_opts);
    let mut csv = String::new();
    for result in &results {
        inspect(result);
        csv.push_str(&result.curve.to_csv());
    }
    write_artifact(out, &csv);
    results
}

fn run_curve<E: Oracle, T: Oracle>(
    explorer: &mut Explorer<'_, E>,
    truth: &T,
    eval_set: &[usize],
    opts: &CurveOpts,
    curve: &mut LearningCurve,
) {
    let space = opts.study.space();
    let rounds = opts.max_samples.div_ceil(opts.batch);
    for round in 0..rounds {
        // Retrain to a depth matched to the current training-set size.
        let n = (round + 1) * opts.batch;
        explorer_set_train(explorer, TrainConfig::scaled_to(n));
        explorer.step();
        let record = explorer.history().last().expect("stepped").clone();
        let true_error = if eval_set.is_empty() {
            None
        } else {
            Some(measure_true_error(
                explorer.ensemble().expect("trained"),
                &space,
                truth,
                eval_set,
                explorer.sampled_indices(),
            ))
        };
        curve.push(&record, true_error);
        eprintln!(
            "  [{}] n={:4} ({:.2}%) est={:.2}%±{:.2} true={}",
            curve.label,
            record.samples,
            100.0 * record.fraction_sampled,
            record.estimate.mean,
            record.estimate.std_dev,
            true_error
                .map(|t| format!("{:.2}%±{:.2}", t.mean, t.std_dev))
                .unwrap_or_else(|| "-".into()),
        );
    }
}

fn explorer_set_train<E: Oracle>(explorer: &mut Explorer<'_, E>, train: TrainConfig) {
    explorer.set_train_config(train);
}

/// True error of `ensemble` against `truth` on `eval_set`, excluding any
/// points that ended up in the training set.
pub fn measure_true_error<T: Oracle>(
    ensemble: &Ensemble,
    space: &archpredict::DesignSpace,
    truth: &T,
    eval_set: &[usize],
    trained: &[usize],
) -> TrueError {
    let trained: std::collections::HashSet<usize> = trained.iter().copied().collect();
    let held_out: Vec<usize> = eval_set
        .iter()
        .copied()
        .filter(|i| !trained.contains(i))
        .collect();
    let mut stats = SimStats::default();
    let actuals = truth.evaluate_batch(space, &held_out, &mut stats);
    let predictions =
        archpredict::infer::predict_indices(ensemble, space, &held_out, Parallelism::Auto);
    let mut acc = Accumulator::new();
    for (&predicted, actual) in predictions.iter().zip(&actuals) {
        // Held-out points whose truth evaluation failed are skipped; the
        // error is measured over the surviving points.
        let Ok(actual) = actual else { continue };
        acc.add(100.0 * (predicted - actual).abs() / actual.abs().max(1e-12));
    }
    TrueError {
        mean: acc.mean(),
        std_dev: acc.population_std_dev(),
        points: acc.count(),
    }
}

/// One row of the Fig. 5.6/5.7 reduction analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionRow {
    /// Application name.
    pub app: String,
    /// Error level the row targets (percent).
    pub target_error: f64,
    /// Error actually achieved (percent true error).
    pub achieved_error: f64,
    /// Simulations used to get there.
    pub samples: usize,
    /// Factor from modeling: space size / simulations.
    pub ann_factor: f64,
    /// Factor from SimPoint: full-run instructions / SimPoint instructions.
    pub simpoint_factor: f64,
    /// Combined multiplicative factor.
    pub combined_factor: f64,
}

/// Derives reduction factors (Figs. 5.6/5.7) from a finished curve: for
/// each target error, the first round whose *true* error meets it.
pub fn reduction_analysis(result: &StudyCurve, targets: &[f64]) -> Vec<ReductionRow> {
    let simpoint_factor =
        result.instructions_per_full_eval as f64 / result.instructions_per_training_eval as f64;
    targets
        .iter()
        .filter_map(|&target| {
            let point = result
                .curve
                .points
                .iter()
                .find(|p| p.true_mean.is_some_and(|m| m <= target))
                .or(result.curve.points.last())?;
            let achieved = point.true_mean?;
            let ann_factor = result.space_size as f64 / point.samples as f64;
            Some(ReductionRow {
                app: result.curve.label.clone(),
                target_error: target,
                achieved_error: achieved,
                samples: point.samples,
                ann_factor,
                simpoint_factor,
                combined_factor: ann_factor * simpoint_factor,
            })
        })
        .collect()
}

/// Atomically writes `content` to `path`, creating parent directories
/// (temp file, fsync, rename — a kill mid-write never tears an artifact).
///
/// # Panics
///
/// Panics on I/O failure (acceptable in experiment binaries).
pub fn write_artifact(path: &Path, content: &str) {
    archpredict::persist::write_atomic(path, content).expect("write artifact");
    eprintln!("wrote {}", path.display());
}

fn cache_path(dir: &str, tag: &str) -> std::path::PathBuf {
    Path::new(dir).join(format!("{tag}.csv"))
}

fn legacy_cache_path(dir: &str, tag: &str) -> std::path::PathBuf {
    Path::new(dir).join(format!("{tag}.json"))
}

/// Preloads a persisted cache: the CSV format written by
/// [`CachedEvaluator::persist`], falling back to the legacy JSON maps
/// earlier revisions wrote so existing `results/simcache/` files keep
/// saving simulation time.
fn load_cache<E: PointEvaluator>(evaluator: &CachedEvaluator<E>, dir: Option<&str>, tag: &str) {
    let Some(dir) = dir else { return };
    let path = cache_path(dir, tag);
    match evaluator.load(&path) {
        Ok(loaded) => {
            eprintln!("loaded {loaded} cached sims from {}", path.display());
            return;
        }
        Err(e) if e.kind() != std::io::ErrorKind::NotFound => {
            eprintln!("ignoring unreadable cache {}: {e}", path.display());
            return;
        }
        Err(_) => {}
    }
    let legacy = legacy_cache_path(dir, tag);
    let Ok(text) = std::fs::read_to_string(&legacy) else {
        return;
    };
    match archpredict_stats::json::map_from_json(&text) {
        Ok(map) => {
            eprintln!(
                "loaded {} cached sims from legacy {}",
                map.len(),
                legacy.display()
            );
            evaluator.preload(map);
        }
        Err(e) => eprintln!("ignoring corrupt cache {}: {e}", legacy.display()),
    }
}

fn save_cache<E: PointEvaluator>(evaluator: &CachedEvaluator<E>, dir: Option<&str>, tag: &str) {
    let Some(dir) = dir else { return };
    evaluator
        .persist(&cache_path(dir, tag))
        .expect("write cache");
}

#[cfg(test)]
mod tests {
    use super::*;
    use archpredict::report::CurvePoint;

    fn fake_curve() -> StudyCurve {
        let mut curve = LearningCurve::new("x");
        for (n, true_mean) in [(50, 6.0), (100, 3.0), (200, 1.5), (400, 0.9)] {
            curve.points.push(CurvePoint {
                samples: n,
                percent_sampled: n as f64 / 100.0,
                estimated_mean: true_mean * 1.1,
                estimated_std_dev: 1.0,
                true_mean: Some(true_mean),
                true_std_dev: Some(1.0),
                training_seconds: 0.1,
                simulation_seconds: 0.2,
                prediction_seconds: 0.0,
                mean_fold_epochs: 100.0,
                unique_simulations: n as u64,
                simulation_cache_hits: 0,
                simulated_instructions: n as u64 * 10_000,
                sim_failures: 0,
                sim_retries: 0,
                sim_quarantined: 0,
                sim_resampled: 0,
            });
        }
        StudyCurve {
            curve,
            space_size: 20_000,
            instructions_per_training_eval: 10_000,
            instructions_per_full_eval: 80_000,
            warm: false,
        }
    }

    #[test]
    fn curve_keys_separate_pipeline_variants() {
        let base = CurveOpts::new(Study::Processor, Benchmark::Mesa);
        let sp = base.clone().with_simpoint(true);
        let bigger = base.clone().with_max_samples(1_900);
        assert_eq!(
            base.key().slug(),
            "processor-curve-b50-e300-mesa-0000000000001bec-950"
        );
        assert_ne!(base.key(), sp.key());
        assert_ne!(base.key(), bigger.key());
        assert_eq!(base.fingerprint(), sp.fingerprint());
    }

    #[test]
    fn study_curve_payload_round_trips() {
        let result = fake_curve();
        let payload = study_curve_payload(&result);
        let text = payload.to_json();
        let back = study_curve_from_payload(&Value::parse(&text).unwrap(), true).unwrap();
        assert!(back.warm);
        assert_eq!(back.curve, result.curve);
        assert_eq!(back.space_size, result.space_size);
        assert_eq!(
            back.instructions_per_full_eval,
            result.instructions_per_full_eval
        );
    }

    #[test]
    fn reduction_rows_compose_multiplicatively() {
        let rows = reduction_analysis(&fake_curve(), &[1.0, 2.0, 3.5]);
        assert_eq!(rows.len(), 3);
        let at_1 = &rows[0];
        assert_eq!(at_1.samples, 400);
        assert!((at_1.ann_factor - 50.0).abs() < 1e-9);
        assert!((at_1.simpoint_factor - 8.0).abs() < 1e-9);
        assert!((at_1.combined_factor - 400.0).abs() < 1e-9);
        let at_2 = &rows[1];
        assert_eq!(at_2.samples, 200, "first round reaching 2%");
    }

    #[test]
    fn unreachable_target_falls_back_to_best() {
        let rows = reduction_analysis(&fake_curve(), &[0.1]);
        assert_eq!(rows[0].samples, 400);
        assert!(rows[0].achieved_error > 0.1);
    }
}
