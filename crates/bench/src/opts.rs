//! Minimal command-line options shared by all experiment binaries.

use crate::runner::CurveOpts;
use archpredict::registry::Registry;
use archpredict::studies::Study;
use archpredict_workloads::Benchmark;

/// Options common to every experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOpts {
    /// Benchmarks to run (`--apps mesa,mcf` / `--apps all` /
    /// `--apps featured`).
    pub apps: Vec<Benchmark>,
    /// Simulations added per refinement round (`--batch`).
    pub batch: usize,
    /// Maximum training-set size (`--max-samples`).
    pub max_samples: usize,
    /// Held-out points for true-error measurement (`--eval-points`).
    pub eval_points: usize,
    /// Paper-scale mode (`--full`): larger evaluation sets and curves.
    pub full: bool,
    /// Output directory for CSV artifacts (`--out`, default `results`).
    pub out_dir: String,
    /// Master seed (`--seed`).
    pub seed: u64,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        Self {
            apps: Benchmark::FEATURED.to_vec(),
            batch: 50,
            max_samples: 950,
            eval_points: 300,
            full: false,
            out_dir: "results".into(),
            seed: 0x1BEC,
        }
    }
}

impl ExperimentOpts {
    /// Parses options from `std::env::args`, with `default_apps` as the
    /// app set used when `--apps` is absent.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown flags or malformed values —
    /// appropriate for experiment binaries.
    pub fn from_args(default_apps: &[Benchmark]) -> Self {
        let mut opts = ExperimentOpts {
            apps: default_apps.to_vec(),
            ..ExperimentOpts::default()
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let mut value = || {
                i += 1;
                args.get(i)
                    .unwrap_or_else(|| panic!("flag {flag} needs a value"))
                    .clone()
            };
            match flag {
                "--apps" => opts.apps = parse_apps(&value()),
                "--batch" => opts.batch = parse(&value(), flag),
                "--max-samples" => opts.max_samples = parse(&value(), flag),
                "--eval-points" => opts.eval_points = parse(&value(), flag),
                "--seed" => opts.seed = parse(&value(), flag),
                "--out" => opts.out_dir = value(),
                "--full" => {
                    opts.full = true;
                    opts.eval_points = opts.eval_points.max(2_000);
                    opts.max_samples = opts.max_samples.max(2_000);
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --apps <list|all|featured> --batch N --max-samples N \
                         --eval-points N --seed N --out DIR --full"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other} (try --help)"),
            }
            i += 1;
        }
        opts
    }

    /// Ensures the output directory exists and returns a path inside it.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn out_path(&self, file: &str) -> std::path::PathBuf {
        std::fs::create_dir_all(&self.out_dir).expect("create output dir");
        std::path::Path::new(&self.out_dir).join(file)
    }

    /// Opens the model registry under the output directory
    /// (`<out>/registry`) — warm artifacts shared by every figure binary.
    ///
    /// # Panics
    ///
    /// Panics if the registry directories cannot be created.
    pub fn registry(&self) -> Registry {
        Registry::open(std::path::Path::new(&self.out_dir).join("registry"))
            .expect("open model registry")
    }

    /// Curve options for one study × application under these settings —
    /// the stack assembly every figure binary used to copy-paste.
    pub fn curve(&self, study: Study, benchmark: Benchmark) -> CurveOpts {
        CurveOpts {
            study,
            benchmark,
            batch: self.batch,
            max_samples: self.max_samples,
            eval_points: self.eval_points,
            simpoint: false,
            seed: self.seed,
            cache_dir: Some(format!("{}/simcache", self.out_dir)),
            quick: false,
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| panic!("invalid value {s:?} for {flag}"))
}

fn parse_apps(s: &str) -> Vec<Benchmark> {
    match s {
        "all" => Benchmark::ALL.to_vec(),
        "featured" => Benchmark::FEATURED.to_vec(),
        list => list
            .split(',')
            .map(|name| {
                Benchmark::from_name(name.trim())
                    .unwrap_or_else(|| panic!("unknown benchmark {name:?}"))
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_apps_variants() {
        assert_eq!(parse_apps("all").len(), 8);
        assert_eq!(parse_apps("featured").len(), 4);
        assert_eq!(
            parse_apps("mesa,mcf"),
            vec![Benchmark::Mesa, Benchmark::Mcf]
        );
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn bad_app_panics() {
        parse_apps("nonesuch");
    }
}
