//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each binary in `src/bin/` reproduces one artifact:
//!
//! | binary       | paper artifact                                         |
//! |--------------|--------------------------------------------------------|
//! | `spaces`     | Tables 4.1 / 4.2 (design-space definitions & sizes)    |
//! | `table_5_1`  | Table 5.1 (true & estimated error at ≈1/2/4 % samples) |
//! | `fig_5_1`    | Fig. 5.1 / A.1 (learning curves, both studies)         |
//! | `fig_5_2`    | Fig. 5.2 / A.2 (estimated vs true, memory study)       |
//! | `fig_5_3`    | Fig. 5.3 / A.3 (estimated vs true, processor study)    |
//! | `fig_5_4`    | Fig. 5.4 (learning curves, ANN + SimPoint)             |
//! | `fig_5_5`    | Fig. 5.5 (estimated vs true, ANN + SimPoint)           |
//! | `fig_5_6`    | Fig. 5.6 (reduction factors at error targets)          |
//! | `fig_5_7`    | Fig. 5.7 (SimPoint vs ANN contribution decomposition)  |
//! | `fig_5_8`    | Fig. 5.8 (ensemble training time vs training-set size) |
//! | `pb_ranking` | §4's Plackett–Burman parameter-significance check      |
//!
//! All binaries share [`ExperimentOpts`] (a tiny `--flag value` parser) and
//! default to *scaled* experiments sized for a laptop: true error is
//! measured on a fixed random held-out subset rather than the entire space,
//! and learning curves use coarser batch steps. `--full` restores
//! paper-scale settings where feasible. Outputs are printed as aligned
//! tables and written as CSV under `results/`.

pub mod daemon;
pub mod opts;
pub mod runner;

pub use daemon::{locate_served_binary, wait_ready, Daemon};
pub use opts::ExperimentOpts;
pub use runner::{
    curve_for, reduction_analysis, registered_curve_for, run_curves, run_figure, write_artifact,
    CurveOpts, ReductionRow, StudyCurve,
};
