//! Simulator throughput: cycle-level simulation speed per benchmark, plus
//! sensitivity of runtime to the machine configuration.

use archpredict_sim::{simulate_with_warmup, SimConfig};
use archpredict_workloads::{Benchmark, TraceGenerator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_8k_instructions");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
        .throughput(Throughput::Elements(8_000));
    let config = SimConfig::default();
    for benchmark in [
        Benchmark::Gzip,
        Benchmark::Mcf,
        Benchmark::Mgrid,
        Benchmark::Mesa,
    ] {
        let generator = TraceGenerator::new(benchmark);
        group.bench_with_input(
            BenchmarkId::from_parameter(benchmark.name()),
            &generator,
            |b, generator| {
                b.iter(|| simulate_with_warmup(&config, generator.interval(0), 2_000, 6_000))
            },
        );
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation_10k");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(10_000));
    let generator = TraceGenerator::new(Benchmark::Twolf);
    group.bench_function("twolf", |b| {
        b.iter(|| generator.interval(0).take(10_000).count())
    });
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_trace_generation);
criterion_main!(benches);
