//! Simulator throughput: cycle-level simulation speed per benchmark, plus
//! sensitivity of runtime to the machine configuration and the batch-first
//! oracle's throughput against the naive point-at-a-time loop.

use archpredict::simulate::{
    CachedEvaluator, Oracle, PointEvaluator, SimBudget, SimStats, StudyEvaluator,
};
use archpredict::studies::Study;
use archpredict_ann::Parallelism;
use archpredict_sim::{simulate_with_warmup, SimConfig};
use archpredict_workloads::{Benchmark, TraceGenerator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_8k_instructions");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
        .throughput(Throughput::Elements(8_000));
    let config = SimConfig::default();
    for benchmark in [
        Benchmark::Gzip,
        Benchmark::Mcf,
        Benchmark::Mgrid,
        Benchmark::Mesa,
    ] {
        let generator = TraceGenerator::new(benchmark);
        group.bench_with_input(
            BenchmarkId::from_parameter(benchmark.name()),
            &generator,
            |b, generator| {
                b.iter(|| simulate_with_warmup(&config, generator.interval(0), 2_000, 6_000))
            },
        );
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation_10k");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(10_000));
    let generator = TraceGenerator::new(Benchmark::Twolf);
    group.bench_function("twolf", |b| {
        b.iter(|| generator.interval(0).take(10_000).count())
    });
    group.finish();
}

fn bench_simulation_throughput(c: &mut Criterion) {
    let study = Study::MemorySystem;
    let space = study.space();
    let generator = TraceGenerator::new(Benchmark::Gzip);
    let budget = SimBudget::spread(&generator, 1, 1_000, 2_000);
    let evaluator = || StudyEvaluator::with_budget(study, Benchmark::Gzip, budget.clone());
    // 16 unique points, each evaluated 3 times — the duplicate-heavy
    // access pattern of a learning-curve run.
    let indices: Vec<usize> = (0..48).map(|i| (i % 16) * 512).collect();

    let mut group = c.benchmark_group("simulation_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .throughput(Throughput::Elements(indices.len() as u64));
    let naive = evaluator();
    group.bench_function("naive_point_loop", |b| {
        b.iter(|| {
            indices
                .iter()
                .map(|&i| naive.evaluate(&space.point(i)))
                .collect::<Vec<f64>>()
        })
    });
    group.bench_function("cached_batch_cold", |b| {
        // Fresh cache each iteration: measures one cold deduplicated
        // batch, not cache replay.
        b.iter(|| {
            let cached =
                CachedEvaluator::with_parallelism(evaluator(), space.clone(), Parallelism::Auto);
            let mut stats = SimStats::default();
            cached.evaluate_batch(&space, &indices, &mut stats)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulator,
    bench_trace_generation,
    bench_simulation_throughput
);
criterion_main!(benches);
