//! Prediction latency: how fast the trained ensemble answers "what is the
//! IPC of this configuration?" — the quantity that replaces a detailed
//! simulation once the model is built.

use archpredict::studies::Study;
use archpredict_ann::{fit_ensemble, Dataset, Parallelism, PredictBuffer, Sample, TrainConfig};
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::sample_without_replacement;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

fn bench_prediction(c: &mut Criterion) {
    let space = Study::MemorySystem.space();
    let mut rng = Xoshiro256::seed_from(2);
    // Synthetic targets are fine: prediction cost is target-independent.
    let data: Dataset = sample_without_replacement(space.size(), 300, &mut rng)
        .into_iter()
        .map(|i| {
            let f = space.encode(&space.point(i));
            let t = 0.5 + 0.3 * f[0];
            Sample::new(f, t)
        })
        .collect();
    let config = TrainConfig {
        max_epochs: 100,
        ..TrainConfig::default()
    };
    let fit = fit_ensemble(&data, 10, &config, 3);

    let mut group = c.benchmark_group("ensemble_prediction");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let features = space.encode(&space.point(777));
    group.throughput(Throughput::Elements(1));
    group.bench_function("single_point", |b| {
        b.iter(|| fit.ensemble.predict(&features))
    });
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("sweep_1000_points", |b| {
        b.iter(|| {
            (0..1_000)
                .map(|i| fit.ensemble.predict(&space.encode(&space.point(i * 23))))
                .sum::<f64>()
        })
    });
    group.finish();
}

/// The allocation-free inference kernel against the point-at-a-time
/// baseline, and the parallel full-space sweep on top of it.
fn bench_inference_throughput(c: &mut Criterion) {
    let space = Study::MemorySystem.space();
    let mut rng = Xoshiro256::seed_from(2);
    let data: Dataset = sample_without_replacement(space.size(), 300, &mut rng)
        .into_iter()
        .map(|i| {
            let f = space.encode(&space.point(i));
            let t = 0.5 + 0.3 * f[0];
            Sample::new(f, t)
        })
        .collect();
    let config = TrainConfig {
        max_epochs: 100,
        ..TrainConfig::default()
    };
    let fit = fit_ensemble(&data, 10, &config, 3);
    let indices: Vec<usize> = (0..space.size()).step_by(5).collect();

    let mut group = c.benchmark_group("inference_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(indices.len() as u64));
    // The pre-kernel reference: textbook one-output-at-a-time loops. This
    // is the denominator of the speedup the blocked kernels must deliver.
    group.bench_function("scalar_reference", |b| {
        b.iter(|| {
            indices
                .iter()
                .map(|&i| {
                    fit.ensemble
                        .predict_reference(&space.encode(&space.point(i)))
                })
                .sum::<f64>()
        })
    });
    // Baseline: allocate-per-call predict, one point at a time (blocked
    // single-point kernel, but fresh buffers every call).
    group.bench_function("point_at_a_time", |b| {
        b.iter(|| {
            indices
                .iter()
                .map(|&i| fit.ensemble.predict(&space.encode(&space.point(i))))
                .sum::<f64>()
        })
    });
    // Same work through the reusable-buffer scalar kernel.
    group.bench_function("scratch_reuse", |b| {
        let mut buf = PredictBuffer::default();
        let mut features = Vec::new();
        b.iter(|| {
            indices
                .iter()
                .map(|&i| {
                    features.clear();
                    space.encode_into(&space.point(i), &mut features);
                    fit.ensemble.predict_with(&features, &mut buf)
                })
                .sum::<f64>()
        })
    });
    // The chunked batch sweep, single-threaded and parallel.
    group.bench_function("batched_1_thread", |b| {
        b.iter(|| {
            archpredict::infer::predict_indices(
                &fit.ensemble,
                &space,
                &indices,
                Parallelism::Fixed(1),
            )
        })
    });
    group.bench_function("batched_auto_threads", |b| {
        b.iter(|| {
            archpredict::infer::predict_indices(&fit.ensemble, &space, &indices, Parallelism::Auto)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_prediction, bench_inference_throughput);
criterion_main!(benches);
