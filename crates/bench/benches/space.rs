//! Design-space operations: point decode/encode and sampling — these run
//! inside every explorer round and every full-space prediction sweep.

use archpredict::studies::Study;
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::IncrementalSampler;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

fn bench_space(c: &mut Criterion) {
    let space = Study::Processor.space();
    let mut group = c.benchmark_group("design_space");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(space.size() as u64));
    group.bench_function("decode_encode_full_space", |b| {
        b.iter(|| {
            (0..space.size())
                .map(|i| space.encode(&space.point(i)).len())
                .sum::<usize>()
        })
    });
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("incremental_sample_1000", |b| {
        b.iter(|| {
            let mut s = IncrementalSampler::new(space.size(), Xoshiro256::seed_from(1));
            s.next_batch(1_000).len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_space);
criterion_main!(benches);
