//! Ensemble training cost vs training-set size — the Criterion companion
//! to Figure 5.8 (which uses real study data; this uses a synthetic
//! response so the bench is self-contained and fast).
//!
//! The `fit_10fold_ensemble` group times the default (parallel) path; the
//! `fit_parallelism` group pins the worker count to compare the sequential
//! path against the fanned-out one on the same fit. On a machine with four
//! or more cores the `threads/auto` rows should run at least 2× faster
//! than `threads/1`; see also the `train_speedup` binary, which prints the
//! speedup table directly.

use archpredict_ann::{fit_ensemble, Dataset, Network, Parallelism, Sample, TrainConfig};
use archpredict_stats::rng::Xoshiro256;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn dataset(n: usize) -> Dataset {
    let mut rng = Xoshiro256::seed_from(5);
    (0..n)
        .map(|_| {
            let a = rng.next_f64();
            let b = rng.next_f64();
            let c = rng.next_f64();
            Sample::new(
                vec![a, b, c],
                0.3 + 0.5 * (a * 2.0).sin().abs() + 0.2 * b * c,
            )
        })
        .collect()
}

fn bench_config() -> TrainConfig {
    TrainConfig {
        max_epochs: 200,
        patience: 200,
        ..TrainConfig::default()
    }
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_10fold_ensemble");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let config = bench_config();
    for n in [100usize, 200, 400] {
        let data = dataset(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| fit_ensemble(data, 10, &config, 7))
        });
    }
    group.finish();
}

fn bench_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_parallelism");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let data = dataset(200);
    let config_with = |parallelism| TrainConfig {
        parallelism,
        ..bench_config()
    };
    for (label, parallelism) in [
        ("1", Parallelism::Fixed(1)),
        ("2", Parallelism::Fixed(2)),
        ("auto", Parallelism::Auto),
    ] {
        let config = config_with(parallelism);
        group.bench_function(BenchmarkId::new("threads", label), |b| {
            b.iter(|| fit_ensemble(&data, 10, &config, 7))
        });
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("(auto resolves to {cores} worker(s) on this machine)");
    group.finish();
}

/// The vectorized backprop step against the textbook scalar reference —
/// the single-example kernel underneath every row of the other groups.
/// `train_speedup` asserts the two paths stay bit-for-bit identical and
/// enforces a minimum speedup; this group just shows the per-step cost.
fn bench_train_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_kernel");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let mut rng = Xoshiro256::seed_from(9);
    let fresh = Network::new(&[3, 16, 1], &mut rng);
    let examples: Vec<([f64; 3], [f64; 1])> = (0..256)
        .map(|_| {
            let x = [rng.next_f64(), rng.next_f64(), rng.next_f64()];
            ([x[0], x[1], x[2]], [0.3 + 0.4 * x[0] + 0.2 * x[1] * x[2]])
        })
        .collect();
    group.bench_function("step/reference", |b| {
        let mut net = fresh.clone();
        b.iter(|| {
            examples
                .iter()
                .map(|(x, t)| net.train_example_reference(x, t, 0.1, 0.5))
                .sum::<f64>()
        })
    });
    group.bench_function("step/vectorized", |b| {
        let mut net = fresh.clone();
        b.iter(|| {
            examples
                .iter()
                .map(|(x, t)| net.train_example(x, t, 0.1, 0.5))
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_training,
    bench_parallelism,
    bench_train_kernel
);
criterion_main!(benches);
