//! Ensemble training cost vs training-set size — the Criterion companion
//! to Figure 5.8 (which uses real study data; this uses a synthetic
//! response so the bench is self-contained and fast).

use archpredict_ann::{fit_ensemble, Dataset, Sample, TrainConfig};
use archpredict_stats::rng::Xoshiro256;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn dataset(n: usize) -> Dataset {
    let mut rng = Xoshiro256::seed_from(5);
    (0..n)
        .map(|_| {
            let a = rng.next_f64();
            let b = rng.next_f64();
            let c = rng.next_f64();
            Sample::new(
                vec![a, b, c],
                0.3 + 0.5 * (a * 2.0).sin().abs() + 0.2 * b * c,
            )
        })
        .collect()
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_10fold_ensemble");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let config = TrainConfig {
        max_epochs: 200,
        patience: 200,
        ..TrainConfig::default()
    };
    for n in [100usize, 200, 400] {
        let data = dataset(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| fit_ensemble(data, 10, &config, 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
