//! SimPoint plan construction cost: BBV profiling + projection + BIC
//! k-means over a whole program's intervals.

use archpredict_simpoint::SimPointPlan;
use archpredict_workloads::{Benchmark, TraceGenerator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("simpoint_plan");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for benchmark in [Benchmark::Mgrid, Benchmark::Twolf] {
        let generator = TraceGenerator::new(benchmark);
        group.bench_with_input(
            BenchmarkId::from_parameter(benchmark.name()),
            &generator,
            |b, generator| b.iter(|| SimPointPlan::build(generator, 2_000, 10)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_plan);
criterion_main!(benches);
