//! The acceptance gate for the registry refactor: a warm second run of
//! the figure-bin entrypoint (`run_curves`, shared by every ported
//! `fig_5_*` and `table_5_1` binary) performs **zero fits and zero
//! simulations** for both studies.

use archpredict::registry::Registry;
use archpredict::studies::Study;
use archpredict_bench::{run_curves, CurveOpts};
use archpredict_workloads::Benchmark;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("archpredict_warmfig_{tag}_{}", std::process::id()))
}

#[test]
fn warm_second_run_of_figure_curves_skips_all_fits_and_simulations() {
    let root = temp_dir("registry");
    let cache = temp_dir("simcache");
    // One curve per study — the same (study, app) sweeps fig_5_2 and
    // fig_5_3 drive, at the quick smoke budget.
    let quick = |study: Study, benchmark: Benchmark| {
        let mut opts = CurveOpts::new(study, benchmark)
            .with_max_samples(20)
            .with_quick(true);
        opts.batch = 10;
        opts.eval_points = 10;
        opts.cache_dir = Some(cache.to_string_lossy().into_owned());
        opts
    };
    let curves = [
        quick(Study::MemorySystem, Benchmark::Gzip),
        quick(Study::Processor, Benchmark::Mesa),
    ];

    let registry = Registry::open(&root).unwrap();
    let cold = run_curves(&registry, &curves);
    assert_eq!(registry.fits_performed(), 2);
    assert!(cold.iter().all(|c| !c.warm));

    // Remove the simulation cache: if the warm run simulated anything at
    // all, the cache directory would reappear.
    std::fs::remove_dir_all(&cache).ok();
    assert!(!cache.exists());

    let reopened = Registry::open(&root).unwrap();
    let warm = run_curves(&reopened, &curves);
    assert_eq!(reopened.fits_performed(), 0, "warm run must not fit");
    assert!(warm.iter().all(|c| c.warm));
    assert!(
        !cache.exists(),
        "warm run must not simulate (simcache was recreated)"
    );

    // The reconstructed curves are the cold curves, bit for bit.
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.curve, w.curve);
        assert_eq!(c.space_size, w.space_size);
        assert_eq!(
            c.instructions_per_training_eval,
            w.instructions_per_training_eval
        );
        assert_eq!(c.instructions_per_full_eval, w.instructions_per_full_eval);
    }

    std::fs::remove_dir_all(&root).ok();
    std::fs::remove_dir_all(&cache).ok();
}
