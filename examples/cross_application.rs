//! The §7 cross-application extension: one pooled model with a one-hot
//! application input, compared against independent per-application models
//! at the same total simulation budget.
//!
//! Both the pooled ensemble and the per-app baselines persist through the
//! model registry (encoder tags `crossapp` and `crossapp-solo`), so a
//! warm re-run skips every training campaign and only simulates the
//! held-out points used for the error comparison.
//!
//! Run with: `cargo run --release --example cross_application`

use archpredict::campaign::{Encoder, PlainEncoder};
use archpredict::crossapp::{encode_with_app, CrossAppModel};
use archpredict::explorer::{Explorer, ExplorerConfig};
use archpredict::registry::{ModelKey, Registry};
use archpredict::simulate::{CachedEvaluator, SimBudget, StudyEvaluator};
use archpredict::studies::Study;
use archpredict_ann::{Ensemble, TrainConfig};
use archpredict_stats::describe::Accumulator;
use archpredict_stats::json::Value;
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::sample_without_replacement;
use archpredict_workloads::{Benchmark, TraceGenerator};

fn main() {
    let study = Study::MemorySystem;
    let space = study.space();
    // Two FP codes with related memory behavior: sharing should help.
    let apps = [Benchmark::Mgrid, Benchmark::Applu];
    let per_app = 150; // small budget: the regime where pooling pays
    let seed = 21;

    let evaluators: Vec<(Benchmark, CachedEvaluator<StudyEvaluator>)> = apps
        .iter()
        .map(|&b| {
            let generator = TraceGenerator::new(b);
            (
                b,
                CachedEvaluator::new(
                    StudyEvaluator::with_budget(
                        study,
                        b,
                        SimBudget::spread(&generator, 2, 6_000, 12_000),
                    ),
                    space.clone(),
                ),
            )
        })
        .collect();

    // The pooled model's input space is the design encoding plus a
    // one-hot app id, so its artifact is fingerprinted with the app list
    // folded in — a run with different apps can never load it.
    let registry = Registry::open("results/registry").expect("registry");
    let app_tag = apps.map(|b| b.name()).join("+");
    let fingerprint = PlainEncoder.fingerprint(&space)
        ^ archpredict_stats::hash::fnv1a_64(format!("crossapp:{app_tag}").as_bytes());
    let key = ModelKey::new(
        study.name(),
        "crossapp",
        &app_tag,
        seed,
        per_app * apps.len(),
    );
    let outcome = registry
        .get_or_fit(&key, fingerprint, || {
            eprintln!("fitting pooled model ({per_app} sims per app)...");
            let pooled = CrossAppModel::fit(
                &space,
                &evaluators,
                per_app,
                &TrainConfig::scaled_to(per_app * apps.len()),
                seed,
            );
            let payload = Value::Object(vec![
                ("estimated_error".into(), Value::num(pooled.estimate.mean)),
                ("samples".into(), Value::num(pooled.samples as f64)),
                (
                    "fraction_sampled".into(),
                    Value::num(pooled.fraction_sampled),
                ),
                (
                    "cache_hits".into(),
                    Value::num(pooled.simulation.cache_hits as f64),
                ),
                (
                    "simulation_seconds".into(),
                    Value::num(pooled.simulation_seconds),
                ),
                (
                    "training_seconds".into(),
                    Value::num(pooled.training_seconds),
                ),
            ]);
            Ok((pooled.ensemble().clone(), payload))
        })
        .expect("fit or load");
    let num = |field: &str| outcome.payload.get(field).unwrap().as_f64().unwrap();
    println!(
        "pooled model over {:?}: estimated error {:.2}%{}",
        apps.map(|b| b.name()),
        num("estimated_error"),
        if outcome.warm { "  [warm]" } else { "" },
    );
    println!(
        "  {} sims ({:.2}% of space x apps), {} cache hits, {:.1}s sim + {:.1}s train",
        num("samples"),
        100.0 * num("fraction_sampled"),
        num("cache_hits"),
        num("simulation_seconds"),
        num("training_seconds"),
    );

    let mut rng = Xoshiro256::seed_from(77);
    let held_out = sample_without_replacement(space.size(), 150, &mut rng);
    let error_on = |model: &Ensemble,
                    encode: &dyn Fn(usize) -> Vec<f64>,
                    evaluator: &CachedEvaluator<StudyEvaluator>| {
        let mut err = Accumulator::new();
        for &i in &held_out {
            let actual = evaluator
                .evaluate(&space.point(i))
                .expect("fault-free evaluator");
            err.add(100.0 * (model.predict(&encode(i)) - actual).abs() / actual);
        }
        (err.mean(), err.population_std_dev())
    };

    for (slot, (benchmark, evaluator)) in evaluators.iter().enumerate() {
        // Per-app baseline on the identical budget, through the registry.
        let solo_key = ModelKey::new(
            study.name(),
            "crossapp-solo",
            benchmark.name(),
            seed,
            per_app,
        );
        let solo = registry
            .get_or_fit(&solo_key, PlainEncoder.fingerprint(&space), || {
                let config = ExplorerConfig {
                    batch: 50,
                    target_error: 0.0,
                    max_samples: per_app,
                    train: TrainConfig::scaled_to(per_app),
                    ..ExplorerConfig::default()
                };
                let mut explorer = Explorer::new(&space, evaluator, config);
                explorer.run();
                let ensemble = explorer.ensemble().expect("explorer fit").clone();
                Ok((ensemble, Value::Null))
            })
            .expect("fit or load");
        let (solo_mean, solo_sd) =
            error_on(&solo.model, &|i| space.encode(&space.point(i)), evaluator);
        let (pooled_mean, pooled_sd) = error_on(
            &outcome.model,
            &|i| encode_with_app(&space, i, slot, apps.len()),
            evaluator,
        );
        println!(
            "{:6}: per-app model {solo_mean:.2}% ± {solo_sd:.2} | pooled model {pooled_mean:.2}% ± {pooled_sd:.2}",
            benchmark.name(),
        );
    }
}
