//! The §7 cross-application extension: one pooled model with a one-hot
//! application input, compared against independent per-application models
//! at the same total simulation budget.
//!
//! Run with: `cargo run --release --example cross_application`

use archpredict::crossapp::CrossAppModel;
use archpredict::explorer::{Explorer, ExplorerConfig};
use archpredict::simulate::{CachedEvaluator, SimBudget, StudyEvaluator};
use archpredict::studies::Study;
use archpredict_ann::TrainConfig;
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::sample_without_replacement;
use archpredict_workloads::{Benchmark, TraceGenerator};

fn main() {
    let study = Study::MemorySystem;
    let space = study.space();
    // Two FP codes with related memory behavior: sharing should help.
    let apps = [Benchmark::Mgrid, Benchmark::Applu];
    let per_app = 150; // small budget: the regime where pooling pays

    let evaluators: Vec<(Benchmark, CachedEvaluator<StudyEvaluator>)> = apps
        .iter()
        .map(|&b| {
            let generator = TraceGenerator::new(b);
            (
                b,
                CachedEvaluator::new(
                    StudyEvaluator::with_budget(
                        study,
                        b,
                        SimBudget::spread(&generator, 2, 6_000, 12_000),
                    ),
                    space.clone(),
                ),
            )
        })
        .collect();

    eprintln!("fitting pooled model ({per_app} sims per app)...");
    let pooled = CrossAppModel::fit(
        &space,
        &evaluators,
        per_app,
        &TrainConfig::scaled_to(per_app * apps.len()),
        21,
    );
    println!(
        "pooled model over {:?}: estimated error {:.2}%",
        apps.map(|b| b.name()),
        pooled.estimate.mean
    );
    println!(
        "  {} sims ({:.2}% of space x apps), {} cache hits, {:.1}s sim + {:.1}s train",
        pooled.samples,
        100.0 * pooled.fraction_sampled,
        pooled.simulation.cache_hits,
        pooled.simulation_seconds,
        pooled.training_seconds,
    );

    let mut rng = Xoshiro256::seed_from(77);
    let held_out = sample_without_replacement(space.size(), 150, &mut rng);
    for (benchmark, evaluator) in &evaluators {
        // Per-app baseline on the identical budget.
        let config = ExplorerConfig {
            batch: 50,
            target_error: 0.0,
            max_samples: per_app,
            train: TrainConfig::scaled_to(per_app),
            ..ExplorerConfig::default()
        };
        let mut solo = Explorer::new(&space, evaluator, config);
        solo.run();
        let solo_error = solo.true_error(&held_out);
        let (pooled_mean, pooled_sd) = pooled.true_error(&space, *benchmark, evaluator, &held_out);
        println!(
            "{:6}: per-app model {:.2}% ± {:.2} | pooled model {pooled_mean:.2}% ± {pooled_sd:.2}",
            benchmark.name(),
            solo_error.mean,
            solo_error.std_dev,
        );
    }
}
