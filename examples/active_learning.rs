//! The §7 active-learning extension: query-by-committee sampling vs the
//! paper's uniform random sampling, on identical budgets.
//!
//! Run with: `cargo run --release --example active_learning`

use archpredict::explorer::{Explorer, ExplorerConfig};
use archpredict::sampling::Strategy;
use archpredict::simulate::{CachedEvaluator, SimBudget, StudyEvaluator};
use archpredict::studies::Study;
use archpredict_workloads::{Benchmark, TraceGenerator};

fn main() {
    let app = Benchmark::Gzip;
    let study = Study::MemorySystem;
    let space = study.space();
    let generator = TraceGenerator::new(app);
    let evaluator = CachedEvaluator::new(
        StudyEvaluator::with_budget(study, app, SimBudget::spread(&generator, 2, 6_000, 12_000)),
        space.clone(),
    );

    let budget = 300;
    for (label, strategy) in [
        ("random (paper)", Strategy::Random),
        ("active (QBC)", Strategy::Active { pool_factor: 4 }),
    ] {
        let config = ExplorerConfig {
            batch: 50,
            target_error: 0.0,
            max_samples: budget,
            strategy,
            ..ExplorerConfig::default()
        };
        let mut explorer = Explorer::new(&space, &evaluator, config);
        explorer.run();
        let held_out = explorer.held_out_set(250);
        let true_error = explorer.true_error(&held_out);
        let estimate = explorer.history().last().expect("ran").estimate;
        println!(
            "{label:16} {budget} sims: true error {:.2}% ± {:.2} (estimated {:.2}%)",
            true_error.mean, true_error.std_dev, estimate.mean
        );
    }
}
