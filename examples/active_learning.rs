//! The §7 active-learning extension: query-by-committee sampling vs the
//! paper's uniform random sampling, on identical budgets.
//!
//! Both fits run through the model registry — the sampling strategy is
//! part of the artifact key (`plain` vs `plain-qbc4`), so each variant
//! persists separately and warm re-runs skip both campaigns.
//!
//! Run with: `cargo run --release --example active_learning`

use archpredict::campaign::CampaignConfig;
use archpredict::registry::{Registry, StudyFitSpec};
use archpredict::sampling::Strategy;
use archpredict::studies::Study;
use archpredict_stats::describe::Accumulator;
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::sample_without_replacement;
use archpredict_workloads::Benchmark;

fn main() {
    let app = Benchmark::Gzip;
    let study = Study::MemorySystem;
    let space = study.space();
    let evaluator = study.oracle(app);

    // A fresh probe set for the true-error measurement, drawn from a
    // stream the samplers never use. (At 250 of 23,040 points, overlap
    // with either 300-point training set is negligible.)
    let mut rng = Xoshiro256::seed_from(0x9E1D);
    let probe = sample_without_replacement(space.size(), 250, &mut rng);

    let budget = 300;
    let registry = Registry::open("results/registry").expect("registry");
    for (label, strategy) in [
        ("random (paper)", Strategy::Random),
        ("active (QBC)", Strategy::Active { pool_factor: 4 }),
    ] {
        let spec = StudyFitSpec::new(
            study,
            app,
            CampaignConfig {
                batch: 50,
                target_error: 0.0,
                max_samples: budget,
                strategy,
                ..CampaignConfig::default()
            },
        );
        let outcome = registry.get_or_fit_study(&spec).expect("fit or load");
        let mut err = Accumulator::new();
        for &i in &probe {
            let actual = evaluator
                .evaluate(&space.point(i))
                .expect("fault-free evaluator");
            let predicted = outcome.model.predict(&space.encode(&space.point(i)));
            err.add(100.0 * (predicted - actual).abs() / actual);
        }
        let estimated = outcome
            .payload
            .get("estimated_error")
            .unwrap()
            .as_f64()
            .unwrap();
        println!(
            "{label:16} {budget} sims: true error {:.2}% ± {:.2} (estimated {:.2}%){}",
            err.mean(),
            err.population_std_dev(),
            estimated,
            if outcome.warm { "  [warm]" } else { "" },
        );
    }
}
