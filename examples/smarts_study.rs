//! SMARTS-style systematic sampling as the fast estimator (§2 names the
//! SMARTS combination as future work): explore the processor space with
//! tiny systematic measurement units, then validate against reference
//! simulation — the companion to `processor_study_simpoint.rs`.
//!
//! Like its companion, the SMARTS-trained ensemble persists through the
//! registry under its own encoder tag (`smarts`); warm re-runs skip the
//! whole exploration campaign.
//!
//! Run with: `cargo run --release --example smarts_study [app]`

use archpredict::campaign::{Encoder, PlainEncoder};
use archpredict::explorer::{Explorer, ExplorerConfig};
use archpredict::registry::{ModelKey, Registry};
use archpredict::simulate::{PointEvaluator, SimBudget, StudyEvaluator};
use archpredict::smarts::{SmartsConfig, SmartsEvaluator};
use archpredict::studies::Study;
use archpredict_stats::json::Value;
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::sample_without_replacement;
use archpredict_workloads::{Benchmark, TraceGenerator};

fn main() {
    let app = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<Benchmark>().ok())
        .unwrap_or(Benchmark::Crafty);
    let study = Study::Processor;
    let space = study.space();

    let smarts = SmartsEvaluator::new(study, app, SmartsConfig::default());
    let point = space.point(4321);
    let estimate = smarts.estimate(&point);
    println!(
        "{app}: SMARTS estimate at one point: IPC {:.4} ± {:.4} (95% CI, {} units)",
        estimate.ipc, estimate.confidence, estimate.units
    );

    let registry = Registry::open("results/registry").expect("registry");
    let key = ModelKey::new(study.name(), "smarts", app.name(), 0x1BEC, 400);
    let outcome = registry
        .get_or_fit(&key, PlainEncoder.fingerprint(&space), || {
            let config = ExplorerConfig {
                batch: 50,
                target_error: 2.0,
                max_samples: 400,
                ..ExplorerConfig::default()
            };
            let mut explorer = Explorer::new(&space, &smarts, config);
            let round = explorer.run().clone();
            let ensemble = explorer.ensemble().expect("explorer fit").clone();
            let payload = Value::Object(vec![
                ("samples".into(), Value::num(round.samples as f64)),
                (
                    "fraction_sampled".into(),
                    Value::num(round.fraction_sampled),
                ),
                ("estimated_error".into(), Value::num(round.estimate.mean)),
            ]);
            Ok((ensemble, payload))
        })
        .expect("fit or load");
    let num = |field: &str| outcome.payload.get(field).unwrap().as_f64().unwrap();
    println!(
        "{}: {} SMARTS-sampled simulations ({:.2}% of space): estimated error {:.2}%",
        if outcome.warm {
            "warm from registry"
        } else {
            "cold fit"
        },
        num("samples"),
        100.0 * num("fraction_sampled"),
        num("estimated_error"),
    );

    // Spot-check predictions against reference (denser-window) simulation.
    let generator = TraceGenerator::new(app);
    let reference = StudyEvaluator::with_budget(
        study,
        app,
        SimBudget {
            warmup: 3_000,
            measured: 1_000,
            intervals: (0..generator.num_intervals()).collect(),
        },
    );
    let mut rng = Xoshiro256::seed_from(17);
    println!("\nspot checks vs reference simulation:");
    for i in sample_without_replacement(space.size(), 5, &mut rng) {
        let actual = reference.evaluate(&space.point(i));
        let predicted = outcome.model.predict(&space.encode(&space.point(i)));
        println!(
            "  point {i:>6}: predicted {predicted:.4}, reference {actual:.4} ({:+.2}%)",
            100.0 * (predicted - actual) / actual
        );
    }
}
