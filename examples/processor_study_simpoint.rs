//! The §5.3 combination: explore the processor space (Table 4.2) training
//! the ANN ensemble on *SimPoint-accelerated* simulations, then check a
//! few predictions against full simulation.
//!
//! The SimPoint-trained ensemble persists through the registry under its
//! own encoder tag (`simpoint-i4000-k10`), keyed apart from plain fits of
//! the same study; warm re-runs load it and skip every training
//! simulation, leaving only the five full-simulation spot checks.
//!
//! Run with: `cargo run --release --example processor_study_simpoint [app]`

use archpredict::campaign::{Encoder, PlainEncoder};
use archpredict::explorer::{Explorer, ExplorerConfig};
use archpredict::registry::{ModelKey, Registry};
use archpredict::simulate::{PointEvaluator, SimBudget, SimPointEvaluator, StudyEvaluator};
use archpredict::studies::Study;
use archpredict_stats::json::Value;
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::sample_without_replacement;
use archpredict_workloads::{Benchmark, TraceGenerator};

fn main() {
    let app = std::env::args()
        .nth(1)
        .and_then(|s| Benchmark::from_name(&s))
        .unwrap_or(Benchmark::Equake);
    let study = Study::Processor;
    let space = study.space();
    let interval_len = 4_000;

    let registry = Registry::open("results/registry").expect("registry");
    let key = ModelKey::new(
        study.name(),
        format!("simpoint-i{interval_len}-k10"),
        app.name(),
        0x1BEC,
        400,
    );
    let outcome = registry
        .get_or_fit(&key, PlainEncoder.fingerprint(&space), || {
            let simpoint = SimPointEvaluator::new(study, app, interval_len, 10);
            let plan = simpoint.plan();
            let config = ExplorerConfig {
                batch: 50,
                target_error: 2.0,
                max_samples: 400,
                ..ExplorerConfig::default()
            };
            let mut explorer = Explorer::new(&space, &simpoint, config);
            let round = explorer.run().clone();
            let ensemble = explorer.ensemble().expect("explorer fit").clone();
            let payload = Value::Object(vec![
                ("samples".into(), Value::num(round.samples as f64)),
                (
                    "fraction_sampled".into(),
                    Value::num(round.fraction_sampled),
                ),
                ("estimated_error".into(), Value::num(round.estimate.mean)),
                (
                    "chosen_intervals".into(),
                    Value::num(plan.points().len() as f64),
                ),
                (
                    "total_intervals".into(),
                    Value::num(plan.total_intervals() as f64),
                ),
                (
                    "reduction_factor".into(),
                    Value::num(plan.reduction_factor()),
                ),
            ]);
            Ok((ensemble, payload))
        })
        .expect("fit or load");
    let num = |field: &str| outcome.payload.get(field).unwrap().as_f64().unwrap();
    println!(
        "{app}: SimPoint chose {} of {} intervals ({:.1}x fewer instructions per simulation)",
        num("chosen_intervals"),
        num("total_intervals"),
        num("reduction_factor"),
    );
    println!(
        "{}: {} SimPoint-accelerated simulations ({:.2}% of space): estimated error {:.2}%",
        if outcome.warm {
            "warm from registry"
        } else {
            "cold fit"
        },
        num("samples"),
        100.0 * num("fraction_sampled"),
        num("estimated_error"),
    );

    // Spot-check against *full* simulation (which the model never saw).
    let generator = TraceGenerator::new(app);
    let warmup = (interval_len / 3) as u64;
    let full = StudyEvaluator::with_budget(
        study,
        app,
        SimBudget {
            warmup,
            measured: interval_len as u64 - warmup,
            intervals: (0..generator.num_intervals()).collect(),
        },
    );
    let mut rng = Xoshiro256::seed_from(7);
    println!("\nspot checks vs full simulation:");
    for i in sample_without_replacement(space.size(), 5, &mut rng) {
        let actual = full.evaluate(&space.point(i));
        let predicted = outcome.model.predict(&space.encode(&space.point(i)));
        println!(
            "  point {i:>6}: predicted {predicted:.4}, full-sim {actual:.4} ({:+.2}%)",
            100.0 * (predicted - actual) / actual
        );
    }
}
