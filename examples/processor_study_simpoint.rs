//! The §5.3 combination: explore the processor space (Table 4.2) training
//! the ANN ensemble on *SimPoint-accelerated* simulations, then check a
//! few predictions against full simulation.
//!
//! Run with: `cargo run --release --example processor_study_simpoint [app]`

use archpredict::explorer::{Explorer, ExplorerConfig};
use archpredict::simulate::{PointEvaluator, SimBudget, SimPointEvaluator, StudyEvaluator};
use archpredict::studies::Study;
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::sample_without_replacement;
use archpredict_workloads::{Benchmark, TraceGenerator};

fn main() {
    let app = std::env::args()
        .nth(1)
        .and_then(|s| Benchmark::from_name(&s))
        .unwrap_or(Benchmark::Equake);
    let study = Study::Processor;
    let space = study.space();
    let interval_len = 4_000;

    let simpoint = SimPointEvaluator::new(study, app, interval_len, 10);
    let plan = simpoint.plan();
    println!(
        "{app}: SimPoint chose {} of {} intervals ({:.1}x fewer instructions per simulation)",
        plan.points().len(),
        plan.total_intervals(),
        plan.reduction_factor()
    );

    let config = ExplorerConfig {
        batch: 50,
        target_error: 2.0,
        max_samples: 400,
        ..ExplorerConfig::default()
    };
    let mut explorer = Explorer::new(&space, &simpoint, config);
    let round = explorer.run().clone();
    println!(
        "{} SimPoint-accelerated simulations ({:.2}% of space): estimated error {:.2}%",
        round.samples,
        100.0 * round.fraction_sampled,
        round.estimate.mean
    );

    // Spot-check against *full* simulation (which the model never saw).
    let generator = TraceGenerator::new(app);
    let warmup = (interval_len / 3) as u64;
    let full = StudyEvaluator::with_budget(
        study,
        app,
        SimBudget {
            warmup,
            measured: interval_len as u64 - warmup,
            intervals: (0..generator.num_intervals()).collect(),
        },
    );
    let mut rng = Xoshiro256::seed_from(7);
    println!("\nspot checks vs full simulation:");
    for i in sample_without_replacement(space.size(), 5, &mut rng) {
        let actual = full.evaluate(&space.point(i));
        let predicted = explorer.predict(i);
        println!(
            "  point {i:>6}: predicted {predicted:.4}, full-sim {actual:.4} ({:+.2}%)",
            100.0 * (predicted - actual) / actual
        );
    }
}
