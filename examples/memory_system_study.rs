//! The paper's memory-system study (Table 4.1) on one benchmark: explore
//! the 23,040-point space with a few hundred cycle-level simulations, then
//! use the model to find the best and worst memory hierarchies.
//!
//! The fit goes through [`archpredict::registry`]: the first run drives a
//! campaign and persists the ensemble; re-runs load it warm and go
//! straight to the whole-space ranking without a single simulation.
//!
//! Run with: `cargo run --release --example memory_system_study [app]`

use archpredict::campaign::CampaignConfig;
use archpredict::infer;
use archpredict::registry::{Registry, StudyFitSpec};
use archpredict::studies::Study;
use archpredict_ann::Parallelism;
use archpredict_workloads::Benchmark;

fn main() {
    let app = std::env::args()
        .nth(1)
        .and_then(|s| Benchmark::from_name(&s))
        .unwrap_or(Benchmark::Twolf);
    let study = Study::MemorySystem;
    let space = study.space();
    println!(
        "{} on the memory-system space ({} points)",
        app,
        space.size()
    );

    // One call assembles the whole Study -> Oracle -> Campaign stack on a
    // cold start — and skips all of it on a warm one.
    let registry = Registry::open("results/registry").expect("registry");
    let spec = StudyFitSpec::new(
        study,
        app,
        CampaignConfig {
            batch: 50,
            target_error: 3.0,
            max_samples: 500,
            ..CampaignConfig::default()
        },
    );
    let outcome = registry.get_or_fit_study(&spec).expect("fit or load");
    let num = |field: &str| outcome.payload.get(field).unwrap().as_f64().unwrap();
    println!(
        "{}: {} simulations ({:.2}% of space): estimated error {:.2}%",
        if outcome.warm {
            "warm from registry"
        } else {
            "cold fit"
        },
        num("samples"),
        100.0 * num("samples") / space.size() as f64,
        num("estimated_error"),
    );

    // Rank the whole space by predicted IPC — something detailed
    // simulation could never afford. The batched kernel sweep covers all
    // 23,040 points in well under a second.
    let all: Vec<usize> = (0..space.size()).collect();
    let predicted = infer::predict_indices(&outcome.model, &space, &all, Parallelism::Auto);
    let mut ranked: Vec<(usize, f64)> = all.into_iter().zip(predicted).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("\npredicted best memory hierarchies:");
    for &(index, predicted) in ranked.iter().take(3) {
        let p = space.point(index);
        println!(
            "  IPC~{predicted:.3}: L1D {}KB/{}-way/{}B {}, L2 {}KB/{}-way/{}B, bus {}B, FSB {:.3}GHz",
            space.number(&p, "l1d_size") / 1024.0,
            space.number(&p, "l1d_assoc"),
            space.number(&p, "l1d_block"),
            space.choice(&p, "l1_write_policy"),
            space.number(&p, "l2_size") / 1024.0,
            space.number(&p, "l2_assoc"),
            space.number(&p, "l2_block"),
            space.number(&p, "l2_bus_bytes"),
            space.number(&p, "fsb_ghz"),
        );
    }
    let &(worst_index, worst_pred) = ranked.last().expect("nonempty");
    println!("\npredicted worst: IPC~{worst_pred:.3} (point {worst_index})");

    // Validate the headline prediction with one real simulation.
    let evaluator = study.oracle(app);
    let best_actual = evaluator
        .evaluate(&space.point(ranked[0].0))
        .expect("fault-free evaluator");
    println!(
        "\nsimulating the predicted-best point: actual IPC {best_actual:.3} (predicted {:.3})",
        ranked[0].1
    );
}
