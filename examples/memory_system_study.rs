//! The paper's memory-system study (Table 4.1) on one benchmark: explore
//! the 23,040-point space with a few hundred cycle-level simulations, then
//! use the model to find the best and worst memory hierarchies.
//!
//! Run with: `cargo run --release --example memory_system_study [app]`

use archpredict::explorer::{Explorer, ExplorerConfig};
use archpredict::simulate::{CachedEvaluator, SimBudget, StudyEvaluator};
use archpredict::studies::Study;
use archpredict_workloads::{Benchmark, TraceGenerator};

fn main() {
    let app = std::env::args()
        .nth(1)
        .and_then(|s| Benchmark::from_name(&s))
        .unwrap_or(Benchmark::Twolf);
    let study = Study::MemorySystem;
    let space = study.space();
    println!(
        "{} on the memory-system space ({} points)",
        app,
        space.size()
    );

    let generator = TraceGenerator::new(app);
    let evaluator = CachedEvaluator::new(
        StudyEvaluator::with_budget(study, app, SimBudget::spread(&generator, 2, 6_000, 12_000)),
        space.clone(),
    );
    let config = ExplorerConfig {
        batch: 50,
        target_error: 3.0,
        max_samples: 500,
        ..ExplorerConfig::default()
    };
    let mut explorer = Explorer::new(&space, &evaluator, config);
    let round = explorer.run().clone();
    println!(
        "{} simulations ({:.2}% of space): estimated error {:.2}%",
        round.samples,
        100.0 * round.fraction_sampled,
        round.estimate.mean
    );

    // Rank the whole space by predicted IPC — something detailed
    // simulation could never afford.
    let mut ranked: Vec<(usize, f64)> = (0..space.size())
        .map(|i| (i, explorer.predict(i)))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("\npredicted best memory hierarchies:");
    for &(index, predicted) in ranked.iter().take(3) {
        let p = space.point(index);
        println!(
            "  IPC~{predicted:.3}: L1D {}KB/{}-way/{}B {}, L2 {}KB/{}-way/{}B, bus {}B, FSB {:.3}GHz",
            space.number(&p, "l1d_size") / 1024.0,
            space.number(&p, "l1d_assoc"),
            space.number(&p, "l1d_block"),
            space.choice(&p, "l1_write_policy"),
            space.number(&p, "l2_size") / 1024.0,
            space.number(&p, "l2_assoc"),
            space.number(&p, "l2_block"),
            space.number(&p, "l2_bus_bytes"),
            space.number(&p, "fsb_ghz"),
        );
    }
    let &(worst_index, worst_pred) = ranked.last().expect("nonempty");
    println!("\npredicted worst: IPC~{worst_pred:.3} (point {worst_index})");

    // Validate the headline prediction with one real simulation.
    let best_actual = evaluator
        .evaluate(&space.point(ranked[0].0))
        .expect("fault-free evaluator");
    println!(
        "\nsimulating the predicted-best point: actual IPC {best_actual:.3} (predicted {:.3})",
        ranked[0].1
    );
}
