//! The §7 multi-task extension: one network predicting IPC together with
//! correlated auxiliary metrics (L2 MPKI, misprediction rate, L1D MPKI)
//! through a shared hidden layer, compared against a single-task model on
//! an identical simulation budget.
//!
//! Run with: `cargo run --release --example multitask`

use archpredict::multitask::{fit_multitask, MetricsEvaluator};
use archpredict::simulate::SimBudget;
use archpredict::studies::Study;
use archpredict_ann::{train::train_network, Sample, TrainConfig};
use archpredict_stats::describe::Accumulator;
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::sample_without_replacement;
use archpredict_workloads::{Benchmark, TraceGenerator};

fn main() {
    let app = Benchmark::Twolf;
    let study = Study::Processor;
    let space = study.space();
    let generator = TraceGenerator::new(app);
    let evaluator =
        MetricsEvaluator::new(study, app, SimBudget::spread(&generator, 2, 6_000, 12_000));

    let mut rng = Xoshiro256::seed_from(11);
    let train_idx = sample_without_replacement(space.size(), 200, &mut rng);
    let test_idx = sample_without_replacement(space.size(), 150, &mut rng);

    eprintln!(
        "simulating {} training + {} test points...",
        train_idx.len(),
        test_idx.len()
    );
    let features: Vec<Vec<f64>> = train_idx
        .iter()
        .map(|&i| space.encode(&space.point(i)))
        .collect();
    let metrics: Vec<Vec<f64>> = train_idx
        .iter()
        .map(|&i| evaluator.evaluate_metrics(&space.point(i)).to_vec())
        .collect();
    let test: Vec<(Vec<f64>, f64)> = test_idx
        .iter()
        .map(|&i| {
            (
                space.encode(&space.point(i)),
                evaluator.evaluate_metrics(&space.point(i)).ipc,
            )
        })
        .collect();

    // Multi-task: all four heads, early-stopped on IPC.
    let config = TrainConfig::scaled_to(features.len());
    let multi = fit_multitask(&features, &metrics, 0, &config, 13);
    let mut multi_err = Accumulator::new();
    for (x, ipc) in &test {
        multi_err.add(100.0 * (multi.predict_primary(x) - ipc).abs() / ipc);
    }

    // Single-task baseline on the identical data.
    let samples: Vec<Sample> = features
        .iter()
        .zip(&metrics)
        .map(|(f, m)| Sample::new(f.clone(), m[0]))
        .collect();
    let split = samples.len() * 4 / 5;
    let train_refs: Vec<&Sample> = samples[..split].iter().collect();
    let es_refs: Vec<&Sample> = samples[split..].iter().collect();
    let single = train_network(&train_refs, &es_refs, &config, &mut rng);
    let mut single_err = Accumulator::new();
    for (x, ipc) in &test {
        single_err.add(100.0 * (single.predict(x) - ipc).abs() / ipc);
    }

    println!(
        "multi-task  IPC error: {:.2}% ± {:.2}",
        multi_err.mean(),
        multi_err.population_std_dev()
    );
    println!(
        "single-task IPC error: {:.2}% ± {:.2}",
        single_err.mean(),
        single_err.population_std_dev()
    );
    println!("\nauxiliary heads at one test point:");
    let preds = multi.predict_all(&test[0].0);
    println!(
        "  ipc={:.3} l2_mpki={:.1} mispredict={:.3} l1d_mpki={:.1}",
        preds[0], preds[1], preds[2], preds[3]
    );
}
