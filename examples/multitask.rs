//! The §7 multi-task extension: one network predicting IPC together with
//! correlated auxiliary metrics (L2 MPKI, misprediction rate, L1D MPKI)
//! through a shared hidden layer, compared against a single-task model on
//! an identical simulation budget.
//!
//! Training data flows through the batch-first oracle stack — one cached
//! oracle per metric head — so the fit reports full [`SimStats`]
//! telemetry. The trained multi-output network persists through the model
//! registry (with the training-row indices riding in the payload), so a
//! warm re-run reloads it and re-runs only the baseline and held-out
//! measurements.
//!
//! Run with: `cargo run --release --example multitask`

use archpredict::campaign::{Encoder, PlainEncoder};
use archpredict::multitask::{
    fit_multitask_oracles, MetricsEvaluator, MultiTaskModel, TargetMetric,
};
use archpredict::registry::{ModelKey, Registry};
use archpredict::simulate::{CachedEvaluator, Oracle, SimBudget, SimStats};
use archpredict::studies::Study;
use archpredict_ann::{train::train_network, Sample, TrainConfig};
use archpredict_stats::describe::Accumulator;
use archpredict_stats::json::Value;
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::sample_without_replacement;
use archpredict_workloads::{Benchmark, TraceGenerator};

fn main() {
    let app = Benchmark::Twolf;
    let study = Study::Processor;
    let space = study.space();

    // One oracle per metric head, each behind its own dedup cache.
    let heads: Vec<CachedEvaluator<MetricsEvaluator>> = [
        TargetMetric::Ipc,
        TargetMetric::L2Mpki,
        TargetMetric::MispredictRate,
        TargetMetric::L1dMpki,
    ]
    .iter()
    .map(|&target| {
        let generator = TraceGenerator::new(app);
        let budget = SimBudget::spread(&generator, 2, 6_000, 12_000);
        CachedEvaluator::new(
            MetricsEvaluator::new(study, app, budget).with_target(target),
            space.clone(),
        )
    })
    .collect();
    let head_refs: Vec<&CachedEvaluator<MetricsEvaluator>> = heads.iter().collect();

    // Multi-task: all four heads, early-stopped on IPC (head 0). The
    // artifact is a MultiTrainedModel, so it goes through the registry's
    // multi-output path; the 4-head target layout is folded into the
    // fingerprint so a single-output artifact can never satisfy this key.
    let registry = Registry::open("results/registry").expect("registry");
    let key = ModelKey::new(study.name(), "multitask-4head", app.name(), 13, 200);
    let fingerprint = PlainEncoder.fingerprint(&space)
        ^ archpredict_stats::hash::fnv1a_64(b"multitask:ipc+l2mpki+mispredict+l1dmpki");
    let config = TrainConfig::scaled_to(200);
    let outcome = registry
        .get_or_fit_multi(&key, fingerprint, || {
            eprintln!("simulating 200 training points x 4 heads...");
            let fit = fit_multitask_oracles(&space, &head_refs, 0, 200, &config, 13);
            println!(
                "multi-task fit: {} rows ({} dropped), {} unique sims, {} cache hits, {:.2}G instructions",
                fit.indices.len(),
                fit.dropped,
                fit.simulation.unique_simulations,
                fit.simulation.cache_hits,
                fit.simulation.simulated_instructions as f64 / 1e9,
            );
            let indices = Value::Array(
                fit.indices
                    .iter()
                    .map(|&i| Value::num(i as f64))
                    .collect(),
            );
            let payload = Value::Object(vec![
                ("indices".into(), indices),
                ("dropped".into(), Value::num(fit.dropped as f64)),
            ]);
            Ok((fit.model.trained().clone(), payload))
        })
        .expect("fit or load");
    let model = MultiTaskModel::from_trained(outcome.model.clone());
    let indices: Vec<usize> = outcome
        .payload
        .get("indices")
        .expect("payload has training rows")
        .as_array()
        .expect("indices is an array")
        .iter()
        .map(|v| v.as_usize().expect("row index"))
        .collect();
    if outcome.warm {
        println!(
            "multi-task model warm from registry: {} training rows, {} heads",
            indices.len(),
            model.tasks()
        );
    }

    // Single-task baseline on the identical training rows — the primary
    // head's cache serves every repeat lookup.
    let mut reuse = SimStats::default();
    let ipc_rows = head_refs[0].evaluate_batch(&space, &indices, &mut reuse);
    println!(
        "baseline reuse: {} cache hits, {} new sims",
        reuse.cache_hits, reuse.unique_simulations
    );
    let samples: Vec<Sample> = indices
        .iter()
        .zip(&ipc_rows)
        .filter_map(|(&i, r)| {
            r.as_ref()
                .ok()
                .map(|&ipc| Sample::new(space.encode(&space.point(i)), ipc))
        })
        .collect();
    let split = samples.len() * 4 / 5;
    let train_refs: Vec<&Sample> = samples[..split].iter().collect();
    let es_refs: Vec<&Sample> = samples[split..].iter().collect();
    let mut rng = Xoshiro256::seed_from(11);
    let single = train_network(&train_refs, &es_refs, &config, &mut rng);

    // Fresh held-out points, true IPC through the same cached oracle.
    let test_idx = sample_without_replacement(space.size(), 150, &mut rng);
    let mut stats = SimStats::default();
    let actuals = head_refs[0].evaluate_batch(&space, &test_idx, &mut stats);
    let mut multi_err = Accumulator::new();
    let mut single_err = Accumulator::new();
    let mut probe = None;
    for (&i, actual) in test_idx.iter().zip(&actuals) {
        let Ok(ipc) = actual else { continue };
        let x = space.encode(&space.point(i));
        multi_err.add(100.0 * (model.predict_primary(&x) - ipc).abs() / ipc);
        single_err.add(100.0 * (single.predict(&x) - ipc).abs() / ipc);
        probe.get_or_insert(x);
    }

    println!(
        "multi-task  IPC error: {:.2}% ± {:.2}",
        multi_err.mean(),
        multi_err.population_std_dev()
    );
    println!(
        "single-task IPC error: {:.2}% ± {:.2}",
        single_err.mean(),
        single_err.population_std_dev()
    );
    if let Some(x) = probe {
        let preds = model.predict_all(&x);
        println!("\nauxiliary heads at one test point:");
        println!(
            "  ipc={:.3} l2_mpki={:.1} mispredict={:.3} l1d_mpki={:.1}",
            preds[0], preds[1], preds[2], preds[3]
        );
    }
}
