//! Quickstart: model a custom design space with a custom evaluator.
//!
//! Shows the core loop on a toy "simulator" so it runs in seconds:
//! define a space, plug in anything implementing `PointEvaluator`,
//! explore until the error estimate is low, then query the model
//! anywhere. The fit goes through the model registry, so a second run
//! loads the trained ensemble warm and performs zero simulations.
//!
//! Run with: `cargo run --release --example quickstart`

use archpredict::campaign::{Encoder, PlainEncoder};
use archpredict::explorer::{Explorer, ExplorerConfig};
use archpredict::registry::{ModelKey, Registry};
use archpredict::simulate::PointEvaluator;
use archpredict::{DesignPoint, DesignSpace, Param};
use archpredict_stats::json::Value;

/// A stand-in for a cycle-level simulator: some smooth nonlinear response.
struct ToySimulator {
    space: DesignSpace,
}

impl PointEvaluator for ToySimulator {
    fn evaluate(&self, point: &DesignPoint) -> f64 {
        let cache_kb = self.space.number(point, "cache_kb");
        let width = self.space.number(point, "width");
        let policy_bonus = if self.space.choice(point, "policy") == "WB" {
            0.08
        } else {
            0.0
        };
        let prefetch = self.space.value(point, 3).as_flag().unwrap_or(false);
        // Diminishing returns in cache, mild width interaction, and
        // prefetching that only pays off with small caches.
        0.4 + 0.25 * (cache_kb / 64.0).ln_1p() * (1.0 + 0.1 * width)
            + policy_bonus
            + if prefetch {
                0.05 * (64.0 / cache_kb).min(1.0)
            } else {
                0.0
            }
    }

    fn instructions_per_evaluation(&self) -> u64 {
        1 // a real simulator would report its instruction budget here
    }
}

fn main() {
    let space = DesignSpace::new(vec![
        Param::cardinal(
            "cache_kb",
            [4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0],
        ),
        Param::cardinal("width", [1.0, 2.0, 3.0, 4.0, 6.0, 8.0]),
        Param::nominal("policy", ["WT", "WB"]),
        Param::boolean("prefetch"),
    ])
    .expect("valid space");
    println!("design space: {} points", space.size());

    let simulator = ToySimulator {
        space: space.clone(),
    };

    // The registry keys the artifact by (study, encoder, app, seed,
    // budget) and stamps it with the space fingerprint, so it reloads
    // warm only while the space definition stays the same.
    let registry = Registry::open("results/registry").expect("registry");
    let key = ModelKey::new("quickstart", "plain", "toy", 0x1BEC, 90);
    let outcome = registry
        .get_or_fit(&key, PlainEncoder.fingerprint(&space), || {
            let config = ExplorerConfig {
                batch: 15,
                target_error: 1.0, // stop at 1% estimated error
                max_samples: 90,
                train: archpredict_ann::TrainConfig::scaled_to(60),
                ..ExplorerConfig::default()
            };
            let mut explorer = Explorer::new(&space, &simulator, config);
            let round = explorer.run().clone();
            let ensemble = explorer.ensemble().expect("explorer fit").clone();
            let payload = Value::Object(vec![
                ("samples".into(), Value::num(round.samples as f64)),
                (
                    "fraction_sampled".into(),
                    Value::num(round.fraction_sampled),
                ),
                ("estimated_error".into(), Value::num(round.estimate.mean)),
                ("estimated_sd".into(), Value::num(round.estimate.std_dev)),
            ]);
            Ok((ensemble, payload))
        })
        .expect("fit or load");
    let num = |field: &str| outcome.payload.get(field).unwrap().as_f64().unwrap();
    println!(
        "{} after {} simulations ({:.1}% of the space): estimated error {:.2}% ± {:.2}",
        if outcome.warm {
            "warm from registry"
        } else {
            "fitted"
        },
        num("samples"),
        100.0 * num("fraction_sampled"),
        num("estimated_error"),
        num("estimated_sd"),
    );

    // Query the model across the whole space without simulating it.
    let predict = |i: usize| outcome.model.predict(&space.encode(&space.point(i)));
    let best = (0..space.size())
        .max_by(|&a, &b| predict(a).total_cmp(&predict(b)))
        .expect("nonempty space");
    let point = space.point(best);
    println!(
        "predicted best config: cache={}KB width={} policy={} -> predicted {:.3}, actual {:.3}",
        space.number(&point, "cache_kb"),
        space.number(&point, "width"),
        space.choice(&point, "policy"),
        predict(best),
        simulator.evaluate(&point),
    );
}
