//! Quickstart: model a custom design space with a custom evaluator.
//!
//! Shows the core loop on a toy "simulator" so it runs in seconds:
//! define a space, plug in anything implementing `PointEvaluator`,
//! explore until the error estimate is low, then query the model
//! anywhere.
//!
//! Run with: `cargo run --release --example quickstart`

use archpredict::explorer::{Explorer, ExplorerConfig};
use archpredict::simulate::PointEvaluator;
use archpredict::{DesignPoint, DesignSpace, Param};

/// A stand-in for a cycle-level simulator: some smooth nonlinear response.
struct ToySimulator {
    space: DesignSpace,
}

impl PointEvaluator for ToySimulator {
    fn evaluate(&self, point: &DesignPoint) -> f64 {
        let cache_kb = self.space.number(point, "cache_kb");
        let width = self.space.number(point, "width");
        let policy_bonus = if self.space.choice(point, "policy") == "WB" {
            0.08
        } else {
            0.0
        };
        let prefetch = self.space.value(point, 3).as_flag().unwrap_or(false);
        // Diminishing returns in cache, mild width interaction, and
        // prefetching that only pays off with small caches.
        0.4 + 0.25 * (cache_kb / 64.0).ln_1p() * (1.0 + 0.1 * width)
            + policy_bonus
            + if prefetch {
                0.05 * (64.0 / cache_kb).min(1.0)
            } else {
                0.0
            }
    }

    fn instructions_per_evaluation(&self) -> u64 {
        1 // a real simulator would report its instruction budget here
    }
}

fn main() {
    let space = DesignSpace::new(vec![
        Param::cardinal(
            "cache_kb",
            [4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0],
        ),
        Param::cardinal("width", [1.0, 2.0, 3.0, 4.0, 6.0, 8.0]),
        Param::nominal("policy", ["WT", "WB"]),
        Param::boolean("prefetch"),
    ])
    .expect("valid space");
    println!("design space: {} points", space.size());

    let simulator = ToySimulator {
        space: space.clone(),
    };
    let config = ExplorerConfig {
        batch: 15,
        target_error: 1.0, // stop at 1% estimated error
        max_samples: 90,
        train: archpredict_ann::TrainConfig::scaled_to(60),
        ..ExplorerConfig::default()
    };
    let mut explorer = Explorer::new(&space, &simulator, config);
    let round = explorer.run().clone();
    println!(
        "stopped after {} simulations ({:.1}% of the space): estimated error {:.2}% ± {:.2}",
        round.samples,
        100.0 * round.fraction_sampled,
        round.estimate.mean,
        round.estimate.std_dev
    );

    // Query the model across the whole space without simulating it.
    let best = (0..space.size())
        .max_by(|&a, &b| explorer.predict(a).total_cmp(&explorer.predict(b)))
        .expect("nonempty space");
    let point = space.point(best);
    println!(
        "predicted best config: cache={}KB width={} policy={} -> predicted {:.3}, actual {:.3}",
        space.number(&point, "cache_kb"),
        space.number(&point, "width"),
        space.choice(&point, "policy"),
        explorer.predict(best),
        simulator.evaluate(&point),
    );
}
