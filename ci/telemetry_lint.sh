#!/usr/bin/env bash
# Telemetry counter lint: every stats-style counter lives in
# core::telemetry as a `Counter` (lock-free, nameable, renderable on
# /metrics). A bare `AtomicU64` field is how bespoke counters used to
# creep into SimStats/ServeStats/registry one at a time, each invisible
# to the scrape — so new ones outside the allowlist below fail CI.
#
# The allowlist is exhaustively justified; additions need the same kind
# of justification (a non-stats use: a nonce, a clock, a failpoint), not
# a counter that belongs in telemetry.rs.
set -euo pipefail
cd "$(dirname "$0")/.."

# path -> why a raw AtomicU64 is legitimate there.
ALLOW=(
  # The telemetry subsystem itself: Counter's backing store.
  "crates/core/src/telemetry.rs"
  # Deterministic failpoint engine: trigger bookkeeping, not stats.
  "crates/core/src/failpoint.rs"
  # Temp-file name sequence (uniqueness nonce), never read as a stat.
  "crates/core/src/persist.rs"
  # Fit-collapse nonce for lease names, never read as a stat.
  "crates/core/src/registry.rs"
  # LRU clock + per-model last-used stamps: orderings, not counts.
  "crates/core/src/serve.rs"
)

fail=0
while IFS= read -r file; do
  allowed=0
  for ok in "${ALLOW[@]}"; do
    if [ "$file" = "$ok" ]; then
      allowed=1
      break
    fi
  done
  if [ "$allowed" -eq 0 ]; then
    echo "telemetry_lint: $file declares AtomicU64 outside core::telemetry:" >&2
    grep -n "AtomicU64" "$file" >&2
    fail=1
  fi
done < <(grep -rl "AtomicU64" crates --include="*.rs")

if [ "$fail" -ne 0 ]; then
  echo >&2
  echo "telemetry_lint: stats counters belong in crates/core/src/telemetry.rs" >&2
  echo "as telemetry::Counter fields (mirror into a global for /metrics); if" >&2
  echo "this AtomicU64 is genuinely not a stat, add it to the allowlist in" >&2
  echo "ci/telemetry_lint.sh with a justification." >&2
  exit 1
fi
echo "telemetry_lint: ok (no stray AtomicU64 stats fields)"
