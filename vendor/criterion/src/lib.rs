//! Offline benchmarking facade.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the slice of the `criterion` API the workspace's
//! benches use: `criterion_group!` / `criterion_main!`, benchmark groups
//! with `sample_size` / `measurement_time` / `throughput`, and
//! `Bencher::iter`. Statistics are deliberately simple — each sample times
//! a batch of iterations and the report prints the fastest sample's
//! per-iteration time (an upper bound on the true cost) plus the mean.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Top-level benchmark driver.
///
/// Like upstream criterion, the driver built by `criterion_group!` (via
/// [`Criterion::from_args`]) treats the first non-flag process argument as
/// a substring filter on the full `group/benchmark` label — `cargo bench
/// --bench prediction -- inference_throughput` runs only the matching
/// benchmarks, which is what lets CI smoke-run the kernel groups without
/// paying for the whole file.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Reads the benchmark filter from the command line (`cargo bench ...
    /// -- <substring>`). Cargo's own `--bench` flag and other `-`-prefixed
    /// arguments are ignored.
    pub fn from_args() -> Self {
        Self {
            filter: std::env::args().skip(1).find(|a| !a.starts_with('-')),
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let filter = self.filter.clone();
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            throughput: None,
            filter,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, |b| f(b));
        group.finish();
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    filter: Option<String>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Total time budget across the samples of one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; this facade's calibration run plays
    /// the warm-up role, so the duration is not used.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group (skipped when a command-line filter
    /// is set and the `group/benchmark` label does not contain it).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if let Some(filter) = &self.filter {
            if !self.label(&id).contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            per_iter: None,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (reporting happens per-benchmark; this is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}

    /// Full `group/benchmark` display label, the string filters match on.
    fn label(&self, id: &BenchmarkId) -> String {
        if self.name.is_empty() {
            id.id.clone()
        } else if id.id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        }
    }

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let Some((best, mean)) = bencher.per_iter else {
            eprintln!(
                "{}/{}: no measurement (iter never called)",
                self.name, id.id
            );
            return;
        };
        let label = self.label(id);
        let thrpt = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {:.0} elem/s", n as f64 / best.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) => {
                format!("  thrpt: {:.0} B/s", n as f64 / best.as_secs_f64())
            }
            None => String::new(),
        };
        eprintln!(
            "{label}: best {}  mean {}{thrpt}",
            format_duration(best),
            format_duration(mean),
        );
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    /// `(fastest, mean)` per-iteration times, filled by [`Bencher::iter`].
    per_iter: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Times `routine`, storing per-iteration statistics.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: one untimed run, then estimate the per-call cost.
        hint::black_box(routine());
        let calibrate_start = Instant::now();
        hint::black_box(routine());
        let estimate = calibrate_start.elapsed().max(Duration::from_nanos(1));

        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters = (per_sample.as_secs_f64() / estimate.as_secs_f64()).clamp(1.0, 1e6) as u32;

        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        let mut timed_iters = 0u64;
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                hint::black_box(routine());
            }
            let sample = start.elapsed();
            total += sample;
            timed_iters += iters as u64;
            let per_iter = sample / iters;
            if per_iter < best {
                best = per_iter;
            }
            // Never exceed twice the configured budget even if the estimate
            // was wildly off.
            if budget_start.elapsed() > self.measurement_time * 2 {
                break;
            }
        }
        let mean = total / timed_iters.max(1) as u32;
        self.per_iter = Some((best, mean));
    }
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("facade");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_reports() {
        benches();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut criterion = Criterion {
            filter: Some("facade/sum".into()),
        };
        let mut ran = Vec::new();
        let mut group = criterion.benchmark_group("facade");
        group
            .sample_size(1)
            .measurement_time(Duration::from_millis(1));
        group.bench_function("sum", |b| {
            ran.push("sum");
            b.iter(|| ());
        });
        group.bench_function("other", |b| {
            ran.push("other");
            b.iter(|| ());
        });
        group.finish();
        assert_eq!(ran, ["sum"]);
    }
}
