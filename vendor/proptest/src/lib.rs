//! Offline property-testing facade.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements the small slice of the `proptest` API that the
//! workspace's property tests use: the [`proptest!`] macro, numeric range
//! strategies, `prop::collection::vec`, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream `proptest`, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the assertion
//!   message) but is not minimized.
//! * **Deterministic seeding.** Case `i` of test `t` always sees the same
//!   inputs, derived from a hash of the test name and the case index, so
//!   failures reproduce exactly across runs and machines.
//! * **Rejections are skips.** `prop_assume!(false)` skips the case rather
//!   than resampling, so a test runs at most `cases` bodies.

use std::ops::Range;

/// Run-time configuration for a [`proptest!`] block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Sentinel message distinguishing `prop_assume!` rejections from failures.
pub const REJECT: &str = "\u{1}__proptest_reject__";

/// Deterministic per-case generator (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the generator for one (test, case) pair.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self {
            state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; bias is negligible for test-input generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream's `prop_map`).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Tuples of strategies generate tuples of values, drawn left to right —
/// the upstream composition idiom (`(a, b).prop_map(..)`).
macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

/// Length specification for [`collection::vec`]: an exact size or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` resolves.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        ProptestConfig, Strategy,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the upstream form:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0usize..100, v in prop::collection::vec(0f64..1.0, 1..10)) {
///         prop_assert!(x < 100);
///         prop_assert!(!v.is_empty());
///     }
/// }
/// #
/// # // Doctests compile without the test harness, which strips `#[test]`
/// # // items, so the form above is compile-checked only. Expand once more
/// # // without the attribute and call it to actually run the loop.
/// # proptest! {
/// #     #![proptest_config(ProptestConfig::with_cases(16))]
/// #     fn holds_without_harness(
/// #         x in 0usize..100,
/// #         v in prop::collection::vec(0f64..1.0, 1..10),
/// #     ) {
/// #         prop_assert!(x < 100);
/// #         prop_assert!(!v.is_empty());
/// #     }
/// # }
/// # holds_without_harness();
/// ```
// The `#[test]` in the example is the documented upstream form, and the
// hidden second expansion drives the loop, so the doctest does execute.
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( $cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(msg) if msg == $crate::REJECT => continue,
                    ::std::result::Result::Err(msg) => {
                        panic!("property '{}' failed on case {}: {}", stringify!($name), case, msg)
                    }
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::REJECT.to_string());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn int_ranges_respect_bounds(x in 3usize..17, y in -5i32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn float_ranges_respect_bounds(x in -1e3f64..1e3) {
            prop_assert!((-1e3..1e3).contains(&x));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn exact_size_vec(v in prop::collection::vec(0f64..1.0, 3)) {
            prop_assert_eq!(v.len(), 3);
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn tuples_and_prop_map_compose(
            pair in (1usize..4, prop::collection::vec(0f64..1.0, 2..5))
                .prop_map(|(n, v)| (n, v.len())),
        ) {
            prop_assert!((1..4).contains(&pair.0));
            prop_assert!((2..5).contains(&pair.1));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("t", 0);
        let mut b = crate::TestRng::for_case("t", 0);
        let mut c = crate::TestRng::for_case("t", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
