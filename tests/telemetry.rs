//! Telemetry integration: the observability layer must be invisible to
//! the numbers. Campaign learning-curve CSVs stay bit-identical at every
//! `Parallelism` setting whether the JSONL trace sink is armed or not;
//! one trace ID set in the coordinator round-trips through the APWK pipe
//! into worker span events; and the daemon's `/metrics` endpoint serves
//! the unified counter registry in its stable text format while `/stats`
//! keeps its JSON shape.
//!
//! The trace sink is process-global, so every test that arms or clears
//! it serializes on a lock and disarms on drop (panic included) — the
//! same discipline the failpoint tests use.

use archpredict::distributed::{locate_worker_binary, ProcessPoolOracle, WorkerSpec};
use archpredict::explorer::{Explorer, ExplorerConfig};
use archpredict::report::LearningCurve;
use archpredict::serve::{http_request, http_request_text, ServeConfig, Server};
use archpredict::simulate::{CachedEvaluator, Oracle, SimBudget, SimStats, StudyEvaluator};
use archpredict::studies::Study;
use archpredict::telemetry;
use archpredict_ann::{Parallelism, TrainConfig};
use archpredict_workloads::{Benchmark, TraceGenerator};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Serializes trace-sink manipulation across test threads; the guard
/// disarms the sink and scrubs the inherited env knob on drop.
static TEST_LOCK: Mutex<()> = Mutex::new(());

struct Armed<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

impl Drop for Armed<'_> {
    fn drop(&mut self) {
        telemetry::clear_trace();
        std::env::remove_var(telemetry::ENV_TRACE);
    }
}

fn lock<'a>() -> Armed<'a> {
    let guard = TEST_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    telemetry::clear_trace();
    Armed(guard)
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "archpredict_telemetry_{tag}_{}.jsonl",
        std::process::id()
    ))
}

/// Builds (a no-op when fresh) and locates the worker binary. Always
/// goes through cargo: `cargo test -p archpredict` does not track the
/// worker as a dependency, so a previously built binary may predate the
/// sources this test asserts against.
fn worker_binary() -> &'static PathBuf {
    static BINARY: OnceLock<PathBuf> = OnceLock::new();
    BINARY.get_or_init(|| {
        let mut build = std::process::Command::new(env!("CARGO"));
        build.args(["build", "-p", "archpredict-worker"]);
        if !cfg!(debug_assertions) {
            build.arg("--release");
        }
        let status = build.status().expect("run cargo build for the worker");
        assert!(status.success(), "building archpredict-worker failed");
        locate_worker_binary().expect("worker binary after building it")
    })
}

fn quick_evaluator() -> CachedEvaluator<StudyEvaluator> {
    let study = Study::MemorySystem;
    let generator = TraceGenerator::new(Benchmark::Applu);
    CachedEvaluator::new(
        StudyEvaluator::with_budget(
            study,
            Benchmark::Applu,
            SimBudget::spread(&generator, 2, 4_000, 8_000),
        ),
        study.space(),
    )
}

/// One small campaign at the given parallelism; returns the
/// wall-clock-free learning-curve CSV, the sampled indices, and probe
/// predictions as exact bits — everything the equivalence gates compare.
fn campaign_outcome(parallelism: Parallelism) -> (String, Vec<usize>, Vec<u64>) {
    let space = Study::MemorySystem.space();
    let evaluator = quick_evaluator();
    let config = ExplorerConfig {
        batch: 25,
        target_error: 0.0,
        max_samples: 50,
        train: TrainConfig {
            max_epochs: 25,
            patience: 8,
            parallelism,
            ..TrainConfig::default()
        },
        seed: 0x7E1E,
        ..ExplorerConfig::default()
    };
    let mut explorer = Explorer::new(&space, &evaluator, config);
    explorer.run();
    let mut curve = LearningCurve::new("telemetry");
    for round in explorer.history() {
        curve.push(round, None);
    }
    let probes: Vec<u64> = explorer
        .predict_indices(&[0, 123, 4_567, 11_000])
        .iter()
        .map(|p| p.to_bits())
        .collect();
    (
        curve.to_csv_deterministic(),
        explorer.sampled_indices().to_vec(),
        probes,
    )
}

/// The tentpole determinism gate: counters and spans must never leak
/// into the numbers. The deterministic campaign CSV is bit-identical at
/// `Fixed(1)`, `Fixed(4)` and `Auto`, with the trace sink disarmed *and*
/// armed.
#[test]
fn campaign_csv_is_bit_identical_across_parallelism_and_trace_arming() {
    let _guard = lock();
    let reference = campaign_outcome(Parallelism::Fixed(1));

    let disarmed = campaign_outcome(Parallelism::Fixed(4));
    assert_eq!(reference, disarmed, "Fixed(4) disarmed diverged");

    let trace = temp_path("campaign");
    let _ = std::fs::remove_file(&trace);
    telemetry::install_trace(&trace).expect("arm trace sink");
    for parallelism in [
        Parallelism::Fixed(1),
        Parallelism::Fixed(4),
        Parallelism::Auto,
    ] {
        let armed = campaign_outcome(parallelism);
        assert_eq!(reference, armed, "{parallelism:?} armed diverged");
    }
    telemetry::clear_trace();

    // The armed campaigns really traced: every canonical phase span shows
    // up in the event log.
    let events = std::fs::read_to_string(&trace).expect("read trace log");
    for name in [
        "campaign.round",
        "campaign.select",
        "campaign.collect",
        "campaign.fit",
        "infer.sweep",
    ] {
        assert!(
            events.contains(&format!("\"name\":\"{name}\"")),
            "no {name} span in the armed trace log"
        );
    }
    let _ = std::fs::remove_file(&trace);
}

/// One trace ID, set in the coordinator, crosses the APWK pipe: the
/// worker adopts it for its span events, echoes it on every RESULT and
/// SPAN_DONE frame (a wrong echo would read as a died worker and show up
/// as a respawn), and both processes' events correlate in one JSONL log.
#[test]
fn trace_id_round_trips_through_the_worker_pipe() {
    let _guard = lock();
    let trace_file = temp_path("pipe");
    let _ = std::fs::remove_file(&trace_file);

    // Arm both sides: the coordinator via `install_trace`, the worker via
    // the env knob it inherits at spawn.
    telemetry::install_trace(&trace_file).expect("arm trace sink");
    std::env::set_var(telemetry::ENV_TRACE, &trace_file);

    let spec = WorkerSpec::Study {
        study: Study::MemorySystem,
        benchmark: Benchmark::Mcf,
        budget: SimBudget::quick(&TraceGenerator::new(Benchmark::Mcf)),
    };
    let space = spec.space();
    worker_binary();
    let mut pool = ProcessPoolOracle::with_workers(spec, 1).expect("build pool");
    pool.set_span_timeout(None);

    let trace_id = telemetry::fresh_trace_id();
    let results = {
        let _scope = telemetry::set_trace(trace_id);
        let indices: Vec<usize> = (0..6).map(|i| (i * 997) % space.size()).collect();
        let mut stats = SimStats::default();
        pool.evaluate_batch(&space, &indices, &mut stats)
    };
    assert!(results.iter().all(Result::is_ok), "fault-free evaluator");
    assert_eq!(pool.respawns(), 0, "a wrong trace echo reads as a death");
    // Shut the pool down so the worker process exits and its final span
    // events are on disk before we read the log.
    drop(pool);

    let events = std::fs::read_to_string(&trace_file).expect("read trace log");
    let hex = format!("{trace_id:016x}");
    let span_with = |name: &str| {
        events
            .lines()
            .any(|l| l.contains(&format!("\"name\":\"{name}\"")) && l.contains(&hex))
    };
    assert!(
        span_with("distributed.span"),
        "no coordinator span carries trace {hex}"
    );
    assert!(
        span_with("worker.span"),
        "no worker span carries trace {hex} — the ID did not cross the pipe"
    );
    let _ = std::fs::remove_file(&trace_file);
}

/// `GET /metrics` on the daemon serves the unified counter registry in
/// the stable text format, while `/stats` keeps answering its JSON shape
/// from the same underlying counters.
#[test]
fn metrics_endpoint_serves_the_unified_registry() {
    let root = std::env::temp_dir().join(format!(
        "archpredict_telemetry_metrics_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            registry_root: root.clone(),
            tick: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn();
    let addr = handle.addr();

    let (status, first) = http_request_text(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        first.lines().next(),
        Some("# archpredict metrics v1"),
        "metrics header is versioned"
    );
    let value_of = |scrape: &str, name: &str| -> u64 {
        scrape
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("counter {name} missing from /metrics"))
            .parse()
            .expect("counter values are integers")
    };
    for name in [
        "serve.requests",
        "serve.predictions",
        "infer.sweeps",
        "registry.fits",
        "sim.unique_simulations",
        "campaign.rounds",
        "trace.spans_emitted",
    ] {
        value_of(&first, name);
    }

    // Counters are cumulative and process-wide: a second scrape sees at
    // least the request the first scrape itself made.
    let (_, second) = http_request_text(addr, "GET", "/metrics", None).unwrap();
    assert!(
        value_of(&second, "serve.requests") > value_of(&first, "serve.requests"),
        "serve.requests did not move between scrapes"
    );

    // `/stats` still answers its JSON schema alongside.
    let (status, stats) = http_request(addr, "GET", "/stats", None).unwrap();
    assert_eq!(status, 200);
    assert!(stats.get("ok").unwrap().as_bool().unwrap());
    assert!(stats.get("requests").unwrap().as_u64().unwrap() >= 2);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
