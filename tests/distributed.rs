//! Integration tests for the distributed simulation oracle
//! (`archpredict::distributed`): bit-for-bit determinism across worker
//! counts (including the 0-worker in-process fallback), crash recovery
//! under SIGKILL, wall-clock span deadlines, and the flow of distributed
//! failures through `RetryingOracle` retry/quarantine.
//!
//! Every test that spawns real workers builds the `archpredict-worker`
//! binary on demand (same profile as this test binary), so the suite
//! passes under both `cargo test` and `cargo test -p archpredict`.

use archpredict::distributed::{
    locate_worker_binary, ProcessPoolOracle, SleepyEvaluator, WorkerSpec,
};
use archpredict::explorer::{Explorer, ExplorerConfig};
use archpredict::report::LearningCurve;
use archpredict::simulate::{
    CachedEvaluator, Oracle, RetryingOracle, SimBudget, SimError, SimResult, SimStats,
};
use archpredict::studies::Study;
use archpredict_ann::{Parallelism, TrainConfig};
use archpredict_workloads::{Benchmark, TraceGenerator};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

/// Builds (a no-op when fresh) and locates the worker binary. Built
/// once per process; concurrent tests share the result. Always goes
/// through cargo: `cargo test -p archpredict` does not track the worker
/// as a dependency, so a previously built binary may speak a stale
/// protocol.
fn worker_binary() -> &'static PathBuf {
    static BINARY: OnceLock<PathBuf> = OnceLock::new();
    BINARY.get_or_init(|| {
        let mut build = std::process::Command::new(env!("CARGO"));
        build.args(["build", "-p", "archpredict-worker"]);
        if !cfg!(debug_assertions) {
            build.arg("--release");
        }
        let status = build.status().expect("run cargo build for the worker");
        assert!(status.success(), "building archpredict-worker failed");
        locate_worker_binary().expect("worker binary after building it")
    })
}

/// A pool over `spec` with `workers` processes and no span deadline.
fn pool(spec: &WorkerSpec, workers: usize) -> ProcessPoolOracle {
    if workers > 0 {
        worker_binary();
    }
    let mut pool = ProcessPoolOracle::with_workers(spec.clone(), workers).expect("build pool");
    pool.set_span_timeout(None);
    pool
}

fn sleepy_spec(sleep_micros: u64) -> WorkerSpec {
    WorkerSpec::Sleepy {
        study: Study::MemorySystem,
        sleep_micros,
        crash_index: None,
        nan_index: None,
    }
}

/// Results as comparable bits: `Ok` values via `to_bits` (bit-exact, NaN
/// included), errors as tagged variants.
fn bits(results: &[SimResult]) -> Vec<Result<u64, SimError>> {
    results.iter().map(|r| r.map(f64::to_bits)).collect()
}

/// Raw batches through the pool are bit-for-bit identical at every worker
/// count, 0 (in-process fallback) included — values, error placements,
/// duplicates and all.
#[test]
fn batches_are_bit_identical_across_worker_counts() {
    let spec = WorkerSpec::Sleepy {
        study: Study::MemorySystem,
        sleep_micros: 0,
        crash_index: None,
        nan_index: Some(77),
    };
    let space = spec.space();
    // Scattered indices, the NaN index, and duplicates.
    let mut indices: Vec<usize> = (0..60).map(|i| (i * 389) % space.size()).collect();
    indices.push(77);
    indices.extend_from_slice(&indices.clone()[..10]);

    let reference = {
        let mut stats = SimStats::default();
        bits(&pool(&spec, 0).evaluate_batch(&space, &indices, &mut stats))
    };
    assert!(reference.contains(&Err(SimError::NonFinite)));
    for workers in [1, 2, 4] {
        let distributed = pool(&spec, workers);
        let mut stats = SimStats::default();
        let results = bits(&distributed.evaluate_batch(&space, &indices, &mut stats));
        assert_eq!(reference, results, "diverged at {workers} workers");
        assert_eq!(distributed.respawns(), 0, "clean run respawned a worker");
    }
}

/// Real detailed simulation crosses the pipe bit-exactly: a quick-budget
/// `StudyEvaluator` batch at 2 workers equals the in-process run.
#[test]
fn real_simulation_is_bit_exact_across_the_pipe() {
    let spec = WorkerSpec::Study {
        study: Study::MemorySystem,
        benchmark: Benchmark::Mcf,
        budget: SimBudget::quick(&TraceGenerator::new(Benchmark::Mcf)),
    };
    let space = spec.space();
    let indices: Vec<usize> = (0..24).map(|i| (i * 997) % space.size()).collect();
    let mut stats = SimStats::default();
    let reference = bits(&pool(&spec, 0).evaluate_batch(&space, &indices, &mut stats));
    let mut stats = SimStats::default();
    let results = bits(&pool(&spec, 2).evaluate_batch(&space, &indices, &mut stats));
    assert_eq!(reference, results);
}

fn campaign_config(parallelism: Parallelism) -> ExplorerConfig {
    ExplorerConfig {
        batch: 25,
        target_error: 0.0,
        max_samples: 75,
        train: TrainConfig {
            max_epochs: 25,
            patience: 8,
            parallelism,
            ..TrainConfig::default()
        },
        seed: 0xD157,
        ..ExplorerConfig::default()
    }
}

type Stack = RetryingOracle<CachedEvaluator<ProcessPoolOracle>>;

fn stack(spec: &WorkerSpec, workers: usize) -> Stack {
    let space = spec.space();
    RetryingOracle::new(CachedEvaluator::new(pool(spec, workers), space))
}

/// Deterministic campaign outcome: the wall-clock-free learning-curve
/// CSV, the sampled indices, and probe predictions as exact bits.
fn campaign_outcome(spec: &WorkerSpec, workers: usize) -> (String, Vec<usize>, Vec<u64>) {
    let space = spec.space();
    let oracle = stack(spec, workers);
    let mut explorer = Explorer::new(&space, &oracle, campaign_config(Parallelism::Fixed(2)));
    explorer.run();
    let mut curve = LearningCurve::new("distributed");
    for round in explorer.history() {
        curve.push(round, None);
    }
    let probes: Vec<u64> = explorer
        .predict_indices(&[0, 123, 4_567, 11_000])
        .iter()
        .map(|p| p.to_bits())
        .collect();
    (
        curve.to_csv_deterministic(),
        explorer.sampled_indices().to_vec(),
        probes,
    )
}

/// Projects a deterministic learning-curve CSV down to its *value*
/// columns (label..mean_fold_epochs), dropping the simulation-telemetry
/// tail. A crash healed by a retry legitimately changes `sim_failures` /
/// `sim_retries` / `unique_simulations`, but must never change a value.
fn value_columns(csv: &str) -> String {
    csv.lines()
        .map(|line| line.split(',').take(8).collect::<Vec<_>>().join(","))
        .collect::<Vec<_>>()
        .join("\n")
}

/// A full exploration campaign over the distributed stack
/// (`RetryingOracle<CachedEvaluator<ProcessPoolOracle>>`) produces a
/// byte-identical deterministic learning curve at 0, 1, 2 and 4 workers.
#[test]
fn campaign_curves_are_identical_at_every_worker_count() {
    let spec = sleepy_spec(0);
    let (csv_0, sampled_0, probes_0) = campaign_outcome(&spec, 0);
    for workers in [1, 2, 4] {
        let (csv, sampled, probes) = campaign_outcome(&spec, workers);
        assert_eq!(csv_0, csv, "curve diverged at {workers} workers");
        assert_eq!(sampled_0, sampled, "samples diverged at {workers} workers");
        assert_eq!(
            probes_0, probes,
            "predictions diverged at {workers} workers"
        );
    }
}

/// SIGKILL-ing a worker mid-span surfaces exactly the in-flight index as
/// `SimError::Crashed`, leaves every batchmate's value intact, and
/// respawns the worker to finish the reassigned remainder.
#[test]
fn sigkill_mid_span_blames_one_index_and_respawns() {
    // 20 ms per evaluation: a 20-index span is in flight for ~400 ms,
    // a wide-open window for the kill below.
    let spec = sleepy_spec(20_000);
    let space = spec.space();
    let distributed = pool(&spec, 1);
    let indices: Vec<usize> = (0..20).map(|i| (i * 53) % space.size()).collect();

    let results = std::thread::scope(|scope| {
        let batch = scope.spawn(|| {
            let mut stats = SimStats::default();
            distributed.evaluate_batch(&space, &indices, &mut stats)
        });
        // Wait for the worker to spawn, let it get a few replies deep,
        // then SIGKILL it mid-evaluation.
        let pid = loop {
            if let Some(&pid) = distributed.worker_pids().first() {
                break pid;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        std::thread::sleep(Duration::from_millis(100));
        let killed = std::process::Command::new("/usr/bin/kill")
            .args(["-9", &pid.to_string()])
            .status()
            .expect("run kill");
        assert!(killed.success(), "kill -9 {pid} failed");
        batch.join().expect("batch thread")
    });

    let crashed: Vec<usize> = indices
        .iter()
        .zip(&results)
        .filter(|(_, r)| matches!(r, Err(SimError::Crashed)))
        .map(|(&i, _)| i)
        .collect();
    assert_eq!(
        crashed.len(),
        1,
        "exactly the in-flight index is blamed: {results:?}"
    );
    for (&index, result) in indices.iter().zip(&results) {
        if !crashed.contains(&index) {
            assert_eq!(
                *result,
                Ok(SleepyEvaluator::value_at(&space.point(index))),
                "batchmate {index} was poisoned"
            );
        }
    }
    assert!(distributed.respawns() >= 1, "no respawn recorded");
}

/// A worker killed mid-campaign heals through `RetryingOracle`: the crash
/// is retried against the respawned worker and the final learning curve
/// is byte-identical to a clean in-process run.
#[test]
fn killed_worker_heals_through_retry_into_identical_curve() {
    let spec = sleepy_spec(10_000);
    let space = spec.space();
    let (clean_csv, clean_sampled, clean_probes) = campaign_outcome(&sleepy_spec(0), 0);

    let oracle = stack(&spec, 2);
    let (healed_csv, healed_sampled, healed_probes) = std::thread::scope(|scope| {
        let killer = scope.spawn(|| {
            let distributed = oracle.inner().inner();
            let pid = loop {
                if let Some(&pid) = distributed.worker_pids().first() {
                    break pid;
                }
                std::thread::sleep(Duration::from_millis(1));
            };
            std::thread::sleep(Duration::from_millis(30));
            let _ = std::process::Command::new("/usr/bin/kill")
                .args(["-9", &pid.to_string()])
                .status();
        });
        let mut explorer = Explorer::new(&space, &oracle, campaign_config(Parallelism::Fixed(2)));
        explorer.run();
        killer.join().expect("killer thread");
        let mut curve = LearningCurve::new("distributed");
        let mut stats = SimStats::default();
        for round in explorer.history() {
            stats.merge(&round.simulation);
            curve.push(round, None);
        }
        // The kill almost always lands mid-span (10 ms/eval spans stay
        // busy for >100 ms) and then must show up as a retried failure.
        // On a heavily loaded host it can land in the idle gap between
        // spans, where the coordinator respawns without blaming an index;
        // that degraded case still proves crash recovery, so note it
        // instead of flaking.
        if stats.failures == 0 {
            eprintln!(
                "note: SIGKILL landed between spans (respawn without blame); \
                 retry flow is pinned by the deterministic-crash tests"
            );
        } else {
            assert!(
                stats.retries >= 1,
                "a crashed index was never retried: {stats:?}"
            );
        }
        let probes: Vec<u64> = explorer
            .predict_indices(&[0, 123, 4_567, 11_000])
            .iter()
            .map(|p| p.to_bits())
            .collect();
        (
            curve.to_csv_deterministic(),
            explorer.sampled_indices().to_vec(),
            probes,
        )
    });
    // The retry's extra simulation shows up in the telemetry columns (one
    // more failure, retry and unique simulation — that's the healing); the
    // values, sampled indices and predictions must be untouched by it.
    assert_eq!(
        value_columns(&clean_csv),
        value_columns(&healed_csv),
        "retry did not heal into the clean curve"
    );
    assert_eq!(
        clean_sampled, healed_sampled,
        "sampling diverged after the kill"
    );
    assert_eq!(
        clean_probes, healed_probes,
        "predictions diverged after the kill"
    );
    assert!(
        oracle.inner().inner().respawns() >= 1,
        "no respawn recorded"
    );
}

/// A deterministic crasher (the worker process aborts at one index) is
/// quarantined identically at every worker count — including 0, where the
/// in-process double returns `Crashed` instead of aborting — and never
/// poisons batchmates.
#[test]
fn deterministic_crash_quarantines_identically_at_every_worker_count() {
    let crash_index: usize = 1_234;
    let spec = WorkerSpec::Sleepy {
        study: Study::MemorySystem,
        sleep_micros: 0,
        crash_index: Some(crash_index as u64),
        nan_index: None,
    };
    let space = spec.space();
    let indices: Vec<usize> = vec![10, 600, crash_index, 4_000, 9_999];

    let run = |workers: usize| {
        let oracle = stack(&spec, workers);
        let mut stats = SimStats::default();
        let first = bits(&oracle.evaluate_batch(&space, &indices, &mut stats));
        let second = bits(&oracle.evaluate_batch(&space, &indices, &mut stats));
        (first, second, stats, oracle.quarantined())
    };

    let (first_0, second_0, stats_0, quarantined_0) = run(0);
    // The crasher burns every retry and lands in quarantine…
    assert_eq!(first_0[2], Err(SimError::Crashed));
    assert_eq!(second_0[2], Err(SimError::Quarantined));
    assert_eq!(quarantined_0, vec![crash_index]);
    assert!(stats_0.retries >= 1 && stats_0.quarantined == 1);
    // …while every batchmate keeps its value.
    for (slot, result) in first_0.iter().enumerate() {
        if slot != 2 {
            assert!(result.is_ok(), "batchmate {slot} poisoned: {result:?}");
        }
    }
    for workers in [1, 2, 4] {
        let (first, second, _, quarantined) = run(workers);
        assert_eq!(first_0, first, "first batch diverged at {workers} workers");
        assert_eq!(
            second_0, second,
            "second batch diverged at {workers} workers"
        );
        assert_eq!(quarantined_0, quarantined);
    }
}

/// A span that blows its wall-clock deadline surfaces `TimedOut` on the
/// in-flight index, and repeated timeouts quarantine it through
/// `RetryingOracle` while fast batchmates keep their values.
#[test]
fn span_deadline_times_out_and_quarantines_through_retry() {
    // 300 ms per evaluation vs a 60 ms deadline: the in-flight index can
    // never finish, so every attempt times out deterministically.
    let spec = sleepy_spec(300_000);
    let space = spec.space();
    let mut slow = pool(&spec, 1);
    slow.set_span_timeout(Some(Duration::from_millis(60)));

    let indices = vec![42usize, 43];
    let oracle = RetryingOracle::new(CachedEvaluator::new(slow, space.clone()));
    let mut stats = SimStats::default();
    let first = oracle.evaluate_batch(&space, &indices, &mut stats);
    assert_eq!(first, vec![Err(SimError::TimedOut); 2]);
    let second = oracle.evaluate_batch(&space, &indices, &mut stats);
    assert_eq!(second, vec![Err(SimError::Quarantined); 2]);
    let mut quarantined = oracle.quarantined();
    quarantined.sort_unstable();
    assert_eq!(quarantined, indices);
    let distributed = oracle.inner().inner();
    assert!(distributed.span_timeouts() >= 2, "deadline never fired");
    assert_eq!(distributed.respawns(), distributed.span_timeouts());
}

/// The in-process `SleepyEvaluator` honors its sleep (the knob the
/// deadline tests rely on) without distorting values.
#[test]
fn sleepy_evaluator_sleeps_and_keeps_values() {
    let spec = sleepy_spec(30_000);
    let space = spec.space();
    let evaluator = spec.evaluator();
    let start = std::time::Instant::now();
    let mut stats = SimStats::default();
    let results = evaluator.evaluate_batch(&space, &[5, 6], &mut stats);
    assert!(start.elapsed() >= Duration::from_millis(50));
    assert_eq!(results[0], Ok(SleepyEvaluator::value_at(&space.point(5))));
    assert_eq!(results[1], Ok(SleepyEvaluator::value_at(&space.point(6))));
}
