//! Cross-crate property tests: invariants that must hold over the whole
//! design spaces and the simulator, checked with proptest.

use archpredict::studies::Study;
use archpredict_sim::simulate_with_warmup;
use archpredict_workloads::{Benchmark, TraceGenerator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn memory_space_index_round_trips(index in 0usize..23_040) {
        let space = Study::MemorySystem.space();
        let point = space.point(index);
        prop_assert_eq!(space.index(&point), index);
    }

    #[test]
    fn processor_space_index_round_trips(index in 0usize..20_736) {
        let space = Study::Processor.space();
        let point = space.point(index);
        prop_assert_eq!(space.index(&point), index);
    }

    #[test]
    fn encodings_stay_in_unit_interval(index in 0usize..23_040) {
        let space = Study::MemorySystem.space();
        let features = space.encode(&space.point(index));
        prop_assert_eq!(features.len(), space.encoded_width());
        prop_assert!(features.iter().all(|&f| (0.0..=1.0).contains(&f)));
    }

    #[test]
    fn every_processor_config_is_valid(index in 0usize..20_736) {
        let space = Study::Processor.space();
        let config = Study::Processor.config_at(&space, &space.point(index));
        prop_assert!(config.derive().is_ok());
    }
}

proptest! {
    // Simulation is comparatively slow; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn simulator_is_deterministic_across_space(
        index in 0usize..23_040,
        bench_idx in 0usize..8,
    ) {
        let space = Study::MemorySystem.space();
        let config = Study::MemorySystem.config_at(&space, &space.point(index));
        let benchmark = Benchmark::ALL[bench_idx];
        let generator = TraceGenerator::new(benchmark);
        let a = simulate_with_warmup(&config, generator.interval(0), 2_000, 3_000);
        let b = simulate_with_warmup(&config, generator.interval(0), 2_000, 3_000);
        prop_assert_eq!(a, b);
        prop_assert!(a.ipc() > 0.0 && a.ipc() <= config.width as f64);
    }

    #[test]
    fn bbvs_are_normalized(bench_idx in 0usize..8, interval in 0usize..24) {
        let generator = TraceGenerator::new(Benchmark::ALL[bench_idx]);
        let bbv = generator.bbv(interval, 2_000);
        let total: f64 = bbv.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(bbv.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }
}
