//! End-to-end integration: workloads -> simulator -> explorer -> ensemble,
//! exercising the full crate stack exactly as the paper's methodology
//! prescribes (sample, simulate, cross-validate, estimate, refine).

use archpredict::explorer::{Explorer, ExplorerConfig};
use archpredict::simulate::{CachedEvaluator, SimBudget, StudyEvaluator};
use archpredict::studies::Study;
use archpredict_ann::TrainConfig;
use archpredict_workloads::{Benchmark, TraceGenerator};

fn quick_evaluator(study: Study, benchmark: Benchmark) -> CachedEvaluator<StudyEvaluator> {
    let generator = TraceGenerator::new(benchmark);
    CachedEvaluator::new(
        StudyEvaluator::with_budget(
            study,
            benchmark,
            SimBudget::spread(&generator, 2, 4_000, 8_000),
        ),
        study.space(),
    )
}

#[test]
fn memory_study_estimate_falls_and_tracks_truth() {
    let study = Study::MemorySystem;
    let space = study.space();
    let evaluator = quick_evaluator(study, Benchmark::Mesa);
    let config = ExplorerConfig {
        batch: 50,
        target_error: 0.0,
        max_samples: 200,
        train: TrainConfig::scaled_to(150),
        ..ExplorerConfig::default()
    };
    let mut explorer = Explorer::new(&space, &evaluator, config);
    let first = explorer.step().estimate.mean;
    for _ in 0..3 {
        explorer.step();
    }
    let last = explorer.history().last().unwrap().estimate;
    assert!(
        last.mean < first,
        "estimate should fall: {first:.2}% -> {:.2}%",
        last.mean
    );
    // Estimated error must track measured error on held-out points.
    let held_out = explorer.held_out_set(60);
    let true_error = explorer.true_error(&held_out);
    assert!(
        (true_error.mean - last.mean).abs() < last.mean.max(2.0),
        "true {:.2}% vs estimated {:.2}%",
        true_error.mean,
        last.mean
    );
    // 200 training sims + 60 eval sims, every one unique.
    assert_eq!(evaluator.unique_evaluations(), 260);
}

#[test]
fn processor_study_pipeline_reaches_low_error() {
    let study = Study::Processor;
    let space = study.space();
    let evaluator = quick_evaluator(study, Benchmark::Gzip);
    let config = ExplorerConfig {
        batch: 50,
        target_error: 2.5,
        max_samples: 300,
        train: TrainConfig::scaled_to(200),
        ..ExplorerConfig::default()
    };
    let mut explorer = Explorer::new(&space, &evaluator, config);
    let round = explorer.run().clone();
    assert!(
        round.estimate.mean <= 2.5 || round.samples >= 300,
        "{round:?}"
    );
    // The model must beat a trivial mean-predictor by a wide margin.
    let held_out = explorer.held_out_set(50);
    let true_error = explorer.true_error(&held_out);
    assert!(true_error.mean < 8.0, "true error {:.2}%", true_error.mean);
}

#[test]
fn full_pipeline_is_deterministic() {
    let study = Study::MemorySystem;
    let space = study.space();
    let run = || {
        let evaluator = quick_evaluator(study, Benchmark::Applu);
        let config = ExplorerConfig {
            batch: 50,
            target_error: 0.0,
            max_samples: 100,
            ..ExplorerConfig::default()
        };
        let mut explorer = Explorer::new(&space, &evaluator, config);
        explorer.step();
        explorer.step();
        let est = explorer.history().last().unwrap().estimate;
        (est, explorer.predict(12345))
    };
    assert_eq!(run(), run());
}

#[test]
fn prediction_beats_mean_baseline() {
    let study = Study::MemorySystem;
    let space = study.space();
    let evaluator = quick_evaluator(study, Benchmark::Equake);
    let config = ExplorerConfig {
        batch: 50,
        target_error: 0.0,
        max_samples: 200,
        train: TrainConfig::scaled_to(200),
        ..ExplorerConfig::default()
    };
    let mut explorer = Explorer::new(&space, &evaluator, config);
    for _ in 0..4 {
        explorer.step();
    }
    let held_out = explorer.held_out_set(60);
    // Mean baseline: predict the training mean everywhere.
    let actuals: Vec<f64> = held_out
        .iter()
        .map(|&i| {
            evaluator
                .evaluate(&space.point(i))
                .expect("fault-free evaluator")
        })
        .collect();
    let mean: f64 = actuals.iter().sum::<f64>() / actuals.len() as f64;
    let baseline: f64 = actuals
        .iter()
        .map(|a| 100.0 * (mean - a).abs() / a)
        .sum::<f64>()
        / actuals.len() as f64;
    let model = explorer.true_error(&held_out);
    assert!(
        model.mean < baseline * 0.7,
        "model {:.2}% must clearly beat mean baseline {:.2}%",
        model.mean,
        baseline
    );
}
