//! Integration of the §5.3 combination: ANN ensembles trained on noisy
//! SimPoint estimates, validated against full simulation.

use archpredict::explorer::{Explorer, ExplorerConfig};
use archpredict::simulate::{PointEvaluator, SimBudget, SimPointEvaluator, StudyEvaluator};
use archpredict::studies::Study;
use archpredict_ann::TrainConfig;
use archpredict_stats::describe::Accumulator;
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::sample_without_replacement;
use archpredict_workloads::{Benchmark, TraceGenerator};

const INTERVAL_LEN: usize = 3_000;

#[test]
fn ann_tolerates_simpoint_noise() {
    let study = Study::Processor;
    let space = study.space();
    let benchmark = Benchmark::Mgrid;
    let simpoint = SimPointEvaluator::new(study, benchmark, INTERVAL_LEN, 8);
    assert!(
        simpoint.plan().reduction_factor() > 3.0,
        "SimPoint must meaningfully reduce simulated instructions"
    );

    let config = ExplorerConfig {
        batch: 50,
        target_error: 0.0,
        max_samples: 200,
        train: TrainConfig::scaled_to(200),
        ..ExplorerConfig::default()
    };
    let mut explorer = Explorer::new(&space, &simpoint, config);
    for _ in 0..4 {
        explorer.step();
    }

    // Truth: full-program simulation at the same interval length.
    let generator = TraceGenerator::new(benchmark);
    let warmup = (INTERVAL_LEN / 3) as u64;
    let full = StudyEvaluator::with_budget(
        study,
        benchmark,
        SimBudget {
            warmup,
            measured: INTERVAL_LEN as u64 - warmup,
            intervals: (0..generator.num_intervals()).collect(),
        },
    );
    let mut rng = Xoshiro256::seed_from(3);
    let mut err = Accumulator::new();
    for i in sample_without_replacement(space.size(), 25, &mut rng) {
        let actual = full.evaluate(&space.point(i));
        let predicted = explorer.predict(i);
        err.add(100.0 * (predicted - actual).abs() / actual);
    }
    assert!(
        err.mean() < 8.0,
        "model trained on SimPoint data has {:.2}% error vs full simulation",
        err.mean()
    );
}

#[test]
fn simpoint_estimator_is_cheaper_and_close() {
    let study = Study::Processor;
    let space = study.space();
    let benchmark = Benchmark::Equake;
    let simpoint = SimPointEvaluator::new(study, benchmark, INTERVAL_LEN, 8);
    let generator = TraceGenerator::new(benchmark);
    let warmup = (INTERVAL_LEN / 3) as u64;
    let full = StudyEvaluator::with_budget(
        study,
        benchmark,
        SimBudget {
            warmup,
            measured: INTERVAL_LEN as u64 - warmup,
            intervals: (0..generator.num_intervals()).collect(),
        },
    );
    assert!(simpoint.instructions_per_evaluation() * 3 < full.instructions_per_evaluation());
    let mut rng = Xoshiro256::seed_from(9);
    let mut err = Accumulator::new();
    for i in sample_without_replacement(space.size(), 6, &mut rng) {
        let p = space.point(i);
        let e = simpoint.evaluate(&p);
        let f = full.evaluate(&p);
        err.add(100.0 * (e - f).abs() / f);
    }
    assert!(err.mean() < 10.0, "SimPoint noise {:.2}%", err.mean());
}
