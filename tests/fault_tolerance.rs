//! Fault-tolerance integration tests over the full oracle stack
//! (`RetryingOracle<FaultInjectingOracle<CachedEvaluator<_>>>`): the leaf
//! simulator runs exactly once per surviving index no matter the fault
//! schedule, exploration under faults is bit-for-bit deterministic at every
//! parallelism setting, and a checkpointed run killed between rounds
//! resumes into the identical learning curve.

use archpredict::crossapp::CrossAppModel;
use archpredict::explorer::{Explorer, ExplorerConfig};
use archpredict::fault::{FaultConfig, FaultInjectingOracle};
use archpredict::report::LearningCurve;
use archpredict::simulate::{CachedEvaluator, Oracle, PointEvaluator, RetryingOracle, SimStats};
use archpredict::space::{DesignPoint, DesignSpace};
use archpredict::studies::Study;
use archpredict_ann::{Parallelism, TrainConfig};
use archpredict_workloads::Benchmark;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A cheap deterministic stand-in for the cycle simulator that counts how
/// often it actually runs.
struct CountingEvaluator {
    space: DesignSpace,
    calls: AtomicUsize,
}

impl CountingEvaluator {
    fn new(space: DesignSpace) -> Self {
        Self {
            space,
            calls: AtomicUsize::new(0),
        }
    }
}

impl PointEvaluator for CountingEvaluator {
    fn evaluate(&self, point: &DesignPoint) -> f64 {
        self.calls.fetch_add(1, Ordering::SeqCst);
        // A smooth nonlinear response over the encoded features.
        let features = self.space.encode(point);
        1.0 + features
            .iter()
            .enumerate()
            .map(|(i, &f)| (1.0 + i as f64).recip() * (f + 0.3 * f * f))
            .sum::<f64>()
    }

    fn instructions_per_evaluation(&self) -> u64 {
        1_000
    }
}

type Stack = RetryingOracle<FaultInjectingOracle<CachedEvaluator<CountingEvaluator>>>;

fn stack(space: &DesignSpace, fault: FaultConfig, parallelism: Parallelism) -> Stack {
    RetryingOracle::new(FaultInjectingOracle::with_config(
        CachedEvaluator::with_parallelism(
            CountingEvaluator::new(space.clone()),
            space.clone(),
            parallelism,
        ),
        fault,
    ))
}

fn leaf_calls(oracle: &Stack) -> usize {
    oracle.inner().inner().inner().calls.load(Ordering::SeqCst)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the fault schedule does, the leaf simulator runs exactly
    /// once per index that ends up with a value: injected faults never
    /// reach it, retries re-enter through the dedup cache, and duplicate
    /// occurrences are served from cache.
    #[test]
    fn leaf_simulates_exactly_once_per_surviving_index(
        seed in 0u64..u64::MAX,
        probability in 0.0f64..0.6,
    ) {
        let space = Study::MemorySystem.space();
        let oracle = stack(
            &space,
            FaultConfig { probability, seed, ..FaultConfig::default() },
            Parallelism::Fixed(2),
        );
        // Distinct indices plus a duplicated tail.
        let mut indices: Vec<usize> = (0..120).map(|i| i * 7 % space.size()).collect();
        indices.extend_from_slice(&indices.clone()[..20]);
        let mut stats = SimStats::default();
        let results = oracle.evaluate_batch(&space, &indices, &mut stats);
        prop_assert_eq!(results.len(), indices.len());
        let survivors: std::collections::BTreeSet<usize> = indices
            .iter()
            .zip(&results)
            .filter(|(_, r)| r.is_ok())
            .map(|(&i, _)| i)
            .collect();
        prop_assert_eq!(leaf_calls(&oracle), survivors.len());
        prop_assert_eq!(stats.unique_simulations as usize, survivors.len());
    }
}

fn faulted_config(parallelism: Parallelism) -> ExplorerConfig {
    ExplorerConfig {
        batch: 25,
        target_error: 0.0,
        max_samples: 75,
        train: TrainConfig {
            max_epochs: 25,
            patience: 8,
            parallelism,
            ..TrainConfig::default()
        },
        seed: 0xFA_0175,
        ..ExplorerConfig::default()
    }
}

fn run_curve(parallelism: Parallelism) -> (String, Vec<usize>, Vec<f64>) {
    let space = Study::MemorySystem.space();
    let oracle = stack(&space, FaultConfig::default(), parallelism);
    let mut explorer = Explorer::new(&space, &oracle, faulted_config(parallelism));
    explorer.run();
    let mut curve = LearningCurve::new("counting");
    for round in explorer.history() {
        curve.push(round, None);
    }
    let probes: Vec<f64> = explorer.predict_indices(&[0, 123, 4_567, 11_000]);
    (
        curve.to_csv_deterministic(),
        explorer.sampled_indices().to_vec(),
        probes,
    )
}

/// Exploration under a 10% injected fault rate is bit-for-bit identical at
/// one thread, four threads, and auto parallelism: same sampled indices,
/// same learning curve, same predictions.
#[test]
fn faulted_exploration_is_deterministic_across_parallelism() {
    let (csv_1, indices_1, probes_1) = run_curve(Parallelism::Fixed(1));
    for parallelism in [Parallelism::Fixed(4), Parallelism::Auto] {
        let (csv, indices, probes) = run_curve(parallelism);
        assert_eq!(csv_1, csv, "curve diverged at {parallelism:?}");
        assert_eq!(indices_1, indices, "samples diverged at {parallelism:?}");
        let bits = |p: &[f64]| -> Vec<u64> { p.iter().map(|x| x.to_bits()).collect() };
        assert_eq!(
            bits(&probes_1),
            bits(&probes),
            "predictions diverged at {parallelism:?}"
        );
    }
}

/// A checkpointed run killed between rounds and resumed from disk replays
/// into the byte-for-byte identical learning curve, and each round still
/// reaches its full budget despite quarantined points.
#[test]
fn killed_run_resumes_into_identical_curve() {
    let space = Study::MemorySystem.space();
    let parallelism = Parallelism::Fixed(2);
    let dir = std::env::temp_dir().join(format!("archpredict_fault_resume_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let uninterrupted = {
        let oracle = stack(&space, FaultConfig::default(), parallelism);
        let mut explorer = Explorer::new(&space, &oracle, faulted_config(parallelism));
        explorer.run();
        for (round_number, round) in explorer.history().iter().enumerate() {
            assert_eq!(
                round.samples,
                25 * (round_number + 1),
                "round {round_number} fell short of its budget"
            );
        }
        let mut curve = LearningCurve::new("counting");
        for round in explorer.history() {
            curve.push(round, None);
        }
        curve.to_csv_deterministic()
    };

    {
        let oracle = stack(&space, FaultConfig::default(), parallelism);
        let mut explorer = Explorer::new(&space, &oracle, faulted_config(parallelism));
        explorer.enable_checkpoints(&dir);
        explorer.try_step().expect("round 1");
        // Killed here: the explorer (and its oracle, cache and quarantine)
        // is dropped without any shutdown path.
    }

    let oracle = stack(&space, FaultConfig::default(), parallelism);
    let mut resumed = Explorer::resume(&space, &oracle, faulted_config(parallelism), &dir)
        .expect("resume from checkpoint");
    assert_eq!(resumed.samples(), 25);
    resumed.try_run().expect("finish the study");
    let mut curve = LearningCurve::new("counting");
    for round in resumed.history() {
        curve.push(round, None);
    }
    assert_eq!(uninterrupted, curve.to_csv_deterministic());
    std::fs::remove_dir_all(&dir).expect("clean up checkpoint dir");
}

fn crossapp_run(parallelism: Parallelism) -> (CrossAppModel, String, Vec<u64>) {
    let space = Study::MemorySystem.space();
    // A 30% fault rate (distinct schedule per app) forces the pooled
    // sampler through its quarantine-and-resample loop.
    let fault = |seed: u64| FaultConfig {
        probability: 0.3,
        seed,
        ..FaultConfig::default()
    };
    let evaluators = vec![
        (Benchmark::Gzip, stack(&space, fault(0xA9_01), parallelism)),
        (Benchmark::Mcf, stack(&space, fault(0xA9_02), parallelism)),
    ];
    let train = TrainConfig {
        max_epochs: 25,
        patience: 8,
        parallelism,
        ..TrainConfig::default()
    };
    let model = CrossAppModel::fit(&space, &evaluators, 40, &train, 0xCA_FA17);
    let mut curve = LearningCurve::new("crossapp-faulted");
    curve.push(&model.round(), None);
    let probes: Vec<u64> = model
        .predict_indices(&space, &[0, 123, 4_567], Benchmark::Mcf, parallelism)
        .iter()
        .map(|p| p.to_bits())
        .collect();
    (model, curve.to_csv_deterministic(), probes)
}

/// A pooled cross-application fit under a 30% injected fault rate still
/// fills every application's quota (the resample loop fires), records the
/// faults in its telemetry, and is bit-for-bit identical at one thread,
/// four threads, and auto parallelism.
#[test]
fn faulted_crossapp_fit_is_deterministic_across_parallelism() {
    let (model, csv_1, probes_1) = crossapp_run(Parallelism::Fixed(1));
    assert_eq!(model.samples, 80, "both apps reach their quota");
    assert!(
        model.simulation.failures > 0 && model.simulation.retries > 0,
        "fault schedule never fired: {:?}",
        model.simulation
    );
    assert!(
        model.simulation.resampled > 0,
        "resample loop never exercised: {:?}",
        model.simulation
    );
    for parallelism in [Parallelism::Fixed(4), Parallelism::Auto] {
        let (_, csv, probes) = crossapp_run(parallelism);
        assert_eq!(csv_1, csv, "curve diverged at {parallelism:?}");
        assert_eq!(probes_1, probes, "predictions diverged at {parallelism:?}");
    }
}
