//! Serving-layer integration: a real in-process daemon fits a quick-budget
//! study through the registry, serves predictions bit-identical to the
//! direct [`archpredict::infer`] path, answers the second fit warm, and
//! coalesces concurrent predict requests without changing a single bit.

use archpredict::campaign::CampaignConfig;
use archpredict::infer;
use archpredict::registry::{Registry, StudyFitSpec};
use archpredict::serve::{http_request, ServeConfig, Server};
use archpredict::studies::Study;
use archpredict_ann::Parallelism;
use archpredict_workloads::Benchmark;
use std::path::PathBuf;
use std::time::Duration;

fn temp_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "archpredict_servetest_{tag}_{}",
        std::process::id()
    ))
}

const SEED: u64 = 0x5E12;
const BUDGET: usize = 20;

fn spec() -> StudyFitSpec {
    StudyFitSpec {
        study: Study::MemorySystem,
        benchmark: Benchmark::Gzip,
        config: CampaignConfig {
            seed: SEED,
            max_samples: BUDGET,
            batch: 10,
            ..CampaignConfig::default()
        },
        quick: true,
    }
}

fn fit_body() -> String {
    format!(
        r#"{{"study":"memory","app":"gzip","seed":"{SEED:x}","budget":{BUDGET},"batch":10,"quick":true}}"#
    )
}

#[test]
fn served_predictions_are_bit_identical_and_second_fit_is_warm() {
    let root = temp_root("bits");
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            registry_root: root.clone(),
            tick: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn();
    let addr = handle.addr();

    // Cold fit through the daemon.
    let (status, reply) = http_request(addr, "POST", "/fit", Some(&fit_body())).unwrap();
    assert_eq!(status, 200, "fit failed: {}", reply.to_json());
    assert!(!reply.get("warm").unwrap().as_bool().unwrap());
    assert_eq!(reply.get("cache").unwrap().as_str().unwrap(), "fitted");

    // Second fit of the same spec: answered from the warm model, zero
    // additional fits.
    let (status, reply) = http_request(addr, "POST", "/fit", Some(&fit_body())).unwrap();
    assert_eq!(status, 200);
    assert!(reply.get("warm").unwrap().as_bool().unwrap());
    assert_eq!(reply.get("fits_performed").unwrap().as_u64().unwrap(), 1);

    // The served sweep must match the direct infer path on the registry
    // artifact, bit for bit.
    let spec = spec();
    let space = spec.study.space();
    let local_registry = Registry::open(&root).unwrap();
    let artifact = local_registry
        .get(&spec.key(), spec.fingerprint())
        .unwrap()
        .expect("daemon committed the artifact");
    let probe: Vec<usize> = (0..48).map(|i| i * 31 % space.size()).collect();
    let local = infer::predict_indices(&artifact.model, &space, &probe, Parallelism::Auto);

    let indices = probe
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let body = format!(
        r#"{{"study":"memory","app":"gzip","seed":"{SEED:x}","budget":{BUDGET},"batch":10,"quick":true,"indices":[{indices}]}}"#
    );
    let (status, reply) = http_request(addr, "POST", "/predict", Some(&body)).unwrap();
    assert_eq!(status, 200, "predict failed: {}", reply.to_json());
    let served: Vec<f64> = reply
        .get("predictions")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect();
    assert_eq!(served.len(), local.len());
    for (i, (s, l)) in served.iter().zip(&local).enumerate() {
        assert_eq!(s.to_bits(), l.to_bits(), "prediction {i} diverged");
    }
    // Telemetry rides on every predict response.
    let stats = reply.get("stats").unwrap();
    assert_eq!(stats.get("cache").unwrap().as_str().unwrap(), "hit");
    assert!(stats.get("batch_indices").unwrap().as_u64().unwrap() >= probe.len() as u64);

    // Concurrent predicts coalesce into shared sweeps — and still return
    // exactly the same bits to every caller.
    let concurrent: Vec<Vec<f64>> = std::thread::scope(|scope| {
        (0..4)
            .map(|_| {
                let body = &body;
                scope.spawn(move || {
                    let (status, reply) =
                        http_request(addr, "POST", "/predict", Some(body)).unwrap();
                    assert_eq!(status, 200);
                    reply
                        .get("predictions")
                        .unwrap()
                        .as_array()
                        .unwrap()
                        .iter()
                        .map(|v| v.as_f64().unwrap())
                        .collect()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for got in &concurrent {
        assert_eq!(got.len(), local.len());
        for (s, l) in got.iter().zip(&local) {
            assert_eq!(s.to_bits(), l.to_bits());
        }
    }

    handle.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn predict_without_fit_refuses_and_daemon_reloads_across_restarts() {
    let root = temp_root("restart");
    let config = || ServeConfig {
        registry_root: root.clone(),
        tick: Duration::from_millis(1),
        ..ServeConfig::default()
    };

    let handle = Server::bind("127.0.0.1:0", config()).unwrap().spawn();
    let body = format!(
        r#"{{"study":"memory","app":"gzip","seed":"{SEED:x}","budget":{BUDGET},"batch":10,"quick":true,"indices":[0,1,2]}}"#
    );
    // Predict never fits: an unfitted model is a 404, not a campaign.
    let (status, reply) = http_request(handle.addr(), "POST", "/predict", Some(&body)).unwrap();
    assert_eq!(status, 404, "got: {}", reply.to_json());
    let (status, _) = http_request(handle.addr(), "POST", "/fit", Some(&fit_body())).unwrap();
    assert_eq!(status, 200);
    handle.shutdown();

    // A restarted daemon serves the persisted artifact warm: no refit.
    let handle = Server::bind("127.0.0.1:0", config()).unwrap().spawn();
    let (status, reply) = http_request(handle.addr(), "POST", "/fit", Some(&fit_body())).unwrap();
    assert_eq!(status, 200);
    assert!(reply.get("warm").unwrap().as_bool().unwrap());
    assert_eq!(reply.get("fits_performed").unwrap().as_u64().unwrap(), 0);
    let (status, _) = http_request(handle.addr(), "POST", "/predict", Some(&body)).unwrap();
    assert_eq!(status, 200);
    handle.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn model_map_is_bounded_and_evicted_models_reload_warm() {
    let root = temp_root("evict");
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            registry_root: root.clone(),
            tick: Duration::from_millis(1),
            max_models: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn();
    let addr = handle.addr();

    let fit = |seed: u64| {
        format!(
            r#"{{"study":"memory","app":"gzip","seed":"{seed:x}","budget":{BUDGET},"batch":10,"quick":true}}"#
        )
    };
    let (status, _) = http_request(addr, "POST", "/fit", Some(&fit(SEED))).unwrap();
    assert_eq!(status, 200);
    // A second distinct spec displaces the first from the 1-slot map.
    let (status, _) = http_request(addr, "POST", "/fit", Some(&fit(SEED ^ 1))).unwrap();
    assert_eq!(status, 200);

    let (status, stats) = http_request(addr, "GET", "/stats", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        stats.get("models_in_memory").unwrap().as_u64().unwrap(),
        1,
        "map stays at max_models"
    );
    assert!(stats.get("models_evicted").unwrap().as_u64().unwrap() >= 1);

    // The evicted model still serves: it reloads warm from the registry
    // (no refit — fits_performed stays at 2).
    let body = format!(
        r#"{{"study":"memory","app":"gzip","seed":"{SEED:x}","budget":{BUDGET},"batch":10,"quick":true,"indices":[0,1,2]}}"#
    );
    let (status, reply) = http_request(addr, "POST", "/predict", Some(&body)).unwrap();
    assert_eq!(
        status,
        200,
        "evicted model must reload: {}",
        reply.to_json()
    );
    assert_eq!(
        reply
            .get("stats")
            .unwrap()
            .get("cache")
            .unwrap()
            .as_str()
            .unwrap(),
        "warm"
    );
    let (_, stats) = http_request(addr, "GET", "/stats", None).unwrap();
    assert_eq!(stats.get("fits_performed").unwrap().as_u64().unwrap(), 2);

    handle.shutdown();
    std::fs::remove_dir_all(&root).ok();
}
