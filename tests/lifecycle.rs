//! Lifecycle integration for the serving daemon: graceful SIGTERM drain
//! with in-flight work against the real `archpredict-served` binary,
//! per-connection panic isolation, load shedding under a saturated
//! connection gate, and the readiness/liveness split.
//!
//! The real-daemon test builds `archpredict-served` on demand (same
//! profile as this test binary) so the suite passes under plain
//! `cargo test`. In-process tests that arm failpoints serialize on a
//! lock because failpoint state is process-global.

use archpredict::failpoint::{self, FailAction, SiteSpec};
use archpredict::serve::{http_request, ServeConfig, Server, FP_HANDLER};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Serializes failpoint-armed sections across test threads; the guard
/// disarms everything on drop (panic included).
static TEST_LOCK: Mutex<()> = Mutex::new(());

struct Armed<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

impl Drop for Armed<'_> {
    fn drop(&mut self) {
        failpoint::clear();
    }
}

fn arm(seed: u64, sites: &[(&str, SiteSpec)]) -> Armed<'static> {
    let guard = TEST_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    failpoint::install(seed, sites);
    Armed(guard)
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "archpredict_lifecycle_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const SEED: u64 = 0x77;
const BUDGET: usize = 10;

fn fit_body() -> String {
    format!(
        r#"{{"study":"memory","app":"gzip","seed":"{SEED:x}","budget":{BUDGET},"batch":5,"quick":true}}"#
    )
}

/// Locates `archpredict-served`, building it first if this test binary
/// was compiled without it (`cargo test -p archpredict`).
fn served_binary() -> &'static PathBuf {
    static BINARY: OnceLock<PathBuf> = OnceLock::new();
    BINARY.get_or_init(|| {
        let locate = || -> Option<PathBuf> {
            let exe = std::env::current_exe().ok()?;
            let mut dir = exe.parent();
            for _ in 0..3 {
                let d = dir?;
                let candidate = d.join("archpredict-served");
                if candidate.is_file() {
                    return Some(candidate);
                }
                dir = d.parent();
            }
            None
        };
        if let Some(path) = locate() {
            return path;
        }
        let mut build = Command::new(env!("CARGO"));
        build.args(["build", "-p", "archpredict-served"]);
        if !cfg!(debug_assertions) {
            build.arg("--release");
        }
        let status = build.status().expect("run cargo build for the daemon");
        assert!(status.success(), "building archpredict-served failed");
        locate().expect("daemon binary after building it")
    })
}

/// Kills the daemon child on drop so a panicking test doesn't leak it.
struct DaemonGuard(Child);

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns the real daemon over `root`, optionally enrolled in a chaos
/// schedule via `ARCHPREDICT_FAILPOINTS`, and scrapes its address line.
fn spawn_daemon(root: &Path, failpoints: Option<&str>) -> (DaemonGuard, SocketAddr) {
    let mut command = Command::new(served_binary());
    command
        .args(["--addr", "127.0.0.1:0", "--tick-ms", "1", "--root"])
        .arg(root)
        .stdout(Stdio::piped());
    match failpoints {
        Some(plan) => {
            command.env(failpoint::ENV_FAILPOINTS, plan);
        }
        None => {
            command.env_remove(failpoint::ENV_FAILPOINTS);
        }
    }
    let mut child = command.spawn().expect("spawn archpredict-served");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut first_line = String::new();
    BufReader::new(stdout)
        .read_line(&mut first_line)
        .expect("daemon address line");
    let addr = first_line
        .trim()
        .rsplit(' ')
        .next()
        .expect("address token")
        .parse()
        .expect("daemon printed its address");
    (DaemonGuard(child), addr)
}

fn signal(pid: u32, sig: &str) {
    let status = Command::new("/usr/bin/kill")
        .args([format!("-{sig}"), pid.to_string()])
        .status()
        .expect("run kill");
    assert!(status.success(), "kill -{sig} {pid} failed");
}

/// SIGTERM with work in flight: the listener closes first (new
/// connections refused), the in-flight request still gets its answer,
/// the process exits 0, and a restarted daemon over the same registry
/// answers the same fit warm.
#[test]
fn sigterm_drains_in_flight_work_then_a_restart_answers_warm() {
    let root = temp_root("drain");
    // Delay the first request 1.5 s inside the handler so it is
    // reliably in flight when the signal lands.
    let plan = "seed=1;serve.handler=delay:1500@1@1";
    let (mut daemon, addr) = spawn_daemon(&root, Some(plan));

    let in_flight =
        std::thread::spawn(move || http_request(addr, "POST", "/fit", Some(&fit_body())));
    std::thread::sleep(Duration::from_millis(500));
    signal(daemon.0.id(), "TERM");
    std::thread::sleep(Duration::from_millis(500));

    // Drain closes the listener before finishing in-flight work: new
    // connections must already be refused while the fit still runs.
    assert!(
        http_request(addr, "GET", "/health", None).is_err(),
        "listener must close at the start of the drain"
    );

    let (status, reply) = in_flight
        .join()
        .expect("client thread")
        .expect("in-flight fit answered during drain");
    assert_eq!(status, 200, "drained fit failed: {}", reply.to_json());
    let exit = daemon.0.wait().expect("reap daemon");
    assert!(exit.success(), "SIGTERM drain must exit 0, got {exit}");

    // The drained commit is durable: a fresh daemon answers warm.
    let (_restarted, addr) = spawn_daemon(&root, None);
    let (status, reply) = http_request(addr, "POST", "/fit", Some(&fit_body())).unwrap();
    assert_eq!(status, 200);
    assert!(
        reply.get("warm").unwrap().as_bool().unwrap(),
        "restarted daemon refitted instead of loading warm"
    );
    let (status, _) = http_request(addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(status, 200);
    let _ = std::fs::remove_dir_all(&root);
}

/// A panicking handler answers 500, is counted, and takes down neither
/// the daemon nor the next request.
#[test]
fn handler_panic_is_isolated_counted_and_survivable() {
    let _armed = arm(1, &[(FP_HANDLER, SiteSpec::once(FailAction::Panic))]);
    let root = temp_root("panic");
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            registry_root: root.clone(),
            tick: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn();
    let addr = handle.addr();

    let (status, reply) = http_request(addr, "GET", "/health", None).unwrap();
    assert_eq!(status, 500, "the armed panic surfaces as a 500");
    assert!(
        reply
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("failpoint"),
        "the 500 carries the panic message: {}",
        reply.to_json()
    );

    let (status, stats) = http_request(addr, "GET", "/stats", None).unwrap();
    assert_eq!(status, 200, "the daemon survived the panic");
    assert_eq!(stats.get("panics_caught").unwrap().as_u64().unwrap(), 1);

    let (status, health) = http_request(addr, "GET", "/health", None).unwrap();
    assert_eq!(status, 200);
    assert!(health.get("ok").unwrap().as_bool().unwrap());
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Raw request/response against the daemon, headers included — what
/// `http_request` hides but the Retry-After assertion needs.
fn raw_request(addr: SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    response
}

/// A saturated connection gate sheds instead of queueing forever: 503
/// with `Retry-After`, counted in `/stats`, and full recovery once the
/// hog disconnects.
#[test]
fn saturated_gate_sheds_with_retry_after_and_recovers() {
    // No failpoints, but hold the lock: another test's armed plan must
    // not leak panics into this server's handlers.
    let _guard = arm(0, &[]);
    let root = temp_root("shed");
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            registry_root: root.clone(),
            tick: Duration::from_millis(1),
            max_connections: 1,
            gate_wait: Duration::from_millis(50),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn();
    let addr = handle.addr();

    // An idle connection that never sends its request holds the sole
    // permit from the moment it is accepted.
    let hog = TcpStream::connect(addr).expect("hog connects");
    std::thread::sleep(Duration::from_millis(120));

    let response = raw_request(
        addr,
        &format!("GET /health HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"),
    );
    assert!(
        response.starts_with("HTTP/1.1 503"),
        "saturated gate must shed with 503, got: {response}"
    );
    assert!(
        response.contains("Retry-After: 1"),
        "shed response must carry Retry-After: {response}"
    );

    // Releasing the hog releases the permit; service resumes and the
    // shed is on the books.
    drop(hog);
    std::thread::sleep(Duration::from_millis(50));
    let (status, health) = http_request(addr, "GET", "/health", None).unwrap();
    assert_eq!(status, 200, "gate must recover once the hog disconnects");
    assert!(health.get("ready").unwrap().as_bool().unwrap());
    let (status, stats) = http_request(addr, "GET", "/stats", None).unwrap();
    assert_eq!(status, 200);
    assert!(stats.get("requests_shed").unwrap().as_u64().unwrap() >= 1);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// `/ready` mirrors `/health` while the daemon accepts work; both carry
/// the readiness booleans the supervisor watches.
#[test]
fn ready_endpoint_reports_acceptance() {
    let _guard = arm(0, &[]);
    let root = temp_root("ready");
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            registry_root: root.clone(),
            tick: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn();
    let addr = handle.addr();

    let (status, ready) = http_request(addr, "GET", "/ready", None).unwrap();
    assert_eq!(status, 200);
    assert!(ready.get("ready").unwrap().as_bool().unwrap());
    assert!(!ready.get("draining").unwrap().as_bool().unwrap());
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
