//! Multi-task training through the batch-first oracle stack: per-head
//! `CachedEvaluator`s dedupe repeat fits, a `FaultInjectingOracle`
//! schedule is survived via the campaign engine's quarantine/resample
//! loop, and the whole fit is bit-for-bit deterministic at every
//! parallelism setting.

use archpredict::fault::{FaultConfig, FaultInjectingOracle};
use archpredict::multitask::{fit_multitask_oracles, MultiTaskFit};
use archpredict::simulate::{CachedEvaluator, PointEvaluator, RetryingOracle};
use archpredict::space::{DesignPoint, DesignSpace};
use archpredict::studies::Study;
use archpredict_ann::{Parallelism, TrainConfig};

/// A cheap deterministic stand-in for one simulator statistic: each head
/// computes a different smooth function of the encoded features, so the
/// heads are correlated (as IPC and miss rates are) but not identical.
struct HeadEvaluator {
    space: DesignSpace,
    head: usize,
}

impl PointEvaluator for HeadEvaluator {
    fn evaluate(&self, point: &DesignPoint) -> f64 {
        let features = self.space.encode(point);
        let base: f64 = features
            .iter()
            .enumerate()
            .map(|(i, &f)| (1.0 + i as f64).recip() * (f + 0.3 * f * f))
            .sum();
        match self.head {
            0 => 1.0 + base,
            1 => 3.0 - base,
            _ => 0.5 + base * base,
        }
    }

    fn instructions_per_evaluation(&self) -> u64 {
        1_000
    }
}

fn train_config(parallelism: Parallelism) -> TrainConfig {
    TrainConfig {
        max_epochs: 25,
        patience: 8,
        parallelism,
        ..TrainConfig::default()
    }
}

fn cached_heads(
    space: &DesignSpace,
    parallelism: Parallelism,
) -> Vec<CachedEvaluator<HeadEvaluator>> {
    (0..3)
        .map(|head| {
            CachedEvaluator::with_parallelism(
                HeadEvaluator {
                    space: space.clone(),
                    head,
                },
                space.clone(),
                parallelism,
            )
        })
        .collect()
}

/// Refitting against the same cached heads serves every simulation from
/// cache: nonzero cache hits, zero new leaf work, identical model.
#[test]
fn refit_is_served_from_cache() {
    let space = Study::MemorySystem.space();
    let heads = cached_heads(&space, Parallelism::Fixed(2));
    let refs: Vec<&CachedEvaluator<HeadEvaluator>> = heads.iter().collect();
    let config = train_config(Parallelism::Fixed(2));

    let first = fit_multitask_oracles(&space, &refs, 0, 60, &config, 0x3417A5);
    assert_eq!(first.simulation.unique_simulations, 180, "3 heads × 60");
    assert_eq!(first.simulation.cache_hits, 0);
    assert_eq!(first.indices.len(), 60);
    assert_eq!(first.dropped, 0);
    assert_eq!(
        first.simulation.simulated_instructions,
        180 * 1_000,
        "leaf instruction accounting"
    );

    let second = fit_multitask_oracles(&space, &refs, 0, 60, &config, 0x3417A5);
    assert_eq!(second.simulation.unique_simulations, 0);
    assert_eq!(second.simulation.cache_hits, 180);
    assert_eq!(first.indices, second.indices);
    let probe = space.encode(&space.point(4_321));
    let bits = |fit: &MultiTaskFit| -> Vec<u64> {
        fit.model
            .predict_all(&probe)
            .iter()
            .map(|v| v.to_bits())
            .collect()
    };
    assert_eq!(bits(&first), bits(&second));
}

type FaultedHead = RetryingOracle<FaultInjectingOracle<CachedEvaluator<HeadEvaluator>>>;

fn faulted_heads(space: &DesignSpace, parallelism: Parallelism) -> Vec<FaultedHead> {
    cached_heads(space, parallelism)
        .into_iter()
        .enumerate()
        .map(|(head, cached)| {
            RetryingOracle::new(FaultInjectingOracle::with_config(
                cached,
                FaultConfig {
                    probability: 0.3,
                    seed: 0xFA_11 + head as u64,
                    ..FaultConfig::default()
                },
            ))
        })
        .collect()
}

fn faulted_fit(parallelism: Parallelism) -> MultiTaskFit {
    let space = Study::MemorySystem.space();
    let heads = faulted_heads(&space, parallelism);
    let refs: Vec<&FaultedHead> = heads.iter().collect();
    fit_multitask_oracles(&space, &refs, 0, 50, &train_config(parallelism), 0xFA_3417)
}

/// A 30% injected fault rate on every head is survived — the primary head
/// resamples to its full quota, auxiliary failures only drop rows — and
/// the result is identical at one thread, four threads and auto.
#[test]
fn faulted_fit_is_survivable_and_deterministic() {
    let space = Study::MemorySystem.space();
    let reference = faulted_fit(Parallelism::Fixed(1));
    assert!(
        reference.simulation.failures > 0 && reference.simulation.retries > 0,
        "fault schedule never fired: {:?}",
        reference.simulation
    );
    assert_eq!(
        reference.indices.len() + reference.dropped,
        50,
        "primary quota minus auxiliary drops"
    );
    assert!(reference.indices.len() >= 40, "dropped too many rows");
    assert!(!reference.model.diverged());
    let probe = space.encode(&space.point(7_890));
    assert!(reference.model.predict_primary(&probe).is_finite());

    let bits = |fit: &MultiTaskFit| -> Vec<u64> {
        fit.model
            .predict_all(&probe)
            .iter()
            .map(|v| v.to_bits())
            .collect()
    };
    for parallelism in [Parallelism::Fixed(4), Parallelism::Auto] {
        let fit = faulted_fit(parallelism);
        assert_eq!(reference.indices, fit.indices, "{parallelism:?}");
        assert_eq!(reference.dropped, fit.dropped, "{parallelism:?}");
        assert_eq!(bits(&reference), bits(&fit), "{parallelism:?}");
    }
}
