//! Integration tests for the deterministic failpoint layer
//! (`archpredict::failpoint`) threaded through the persist, registry and
//! distributed paths: torn writes never touch the destination, a commit
//! crash is a clean miss that a refit heals (superseding the old
//! registry `CrashPoint` hook), injected schedules replay identically,
//! and a faulted worker dispatch respawns and heals bit-exactly.
//!
//! Failpoint state is process-global, so every test arms its plan
//! through [`arm`], which serializes on a lock and disarms on drop —
//! parallel test threads never observe each other's schedules.

use archpredict::campaign::CampaignConfig;
use archpredict::distributed::{locate_worker_binary, ProcessPoolOracle, WorkerSpec, FP_SPAN_SEND};
use archpredict::failpoint::{self, FailAction, SiteSpec};
use archpredict::persist::{self, FP_WRITE_ATOMIC};
use archpredict::registry::{Registry, StudyFitSpec, FP_COMMIT_ENTRY, FP_COMMIT_OBJECT};
use archpredict::simulate::{Oracle, SimStats};
use archpredict::studies::Study;
use archpredict_workloads::Benchmark;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes failpoint-armed sections across test threads; the guard
/// disarms everything on drop (panic included).
static TEST_LOCK: Mutex<()> = Mutex::new(());

struct Armed<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

impl Drop for Armed<'_> {
    fn drop(&mut self) {
        failpoint::clear();
    }
}

fn arm(seed: u64, sites: &[(&str, SiteSpec)]) -> Armed<'static> {
    let guard = TEST_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    failpoint::install(seed, sites);
    Armed(guard)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("archpredict_fptest_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A micro-budget fit spec: big enough to exercise the full campaign →
/// commit path, small enough to run twice per test.
fn quick_spec(seed: u64) -> StudyFitSpec {
    StudyFitSpec {
        study: Study::MemorySystem,
        benchmark: Benchmark::Gzip,
        config: CampaignConfig {
            seed,
            max_samples: 8,
            batch: 4,
            ..CampaignConfig::default()
        },
        quick: true,
    }
}

/// Files directly under `dir` (names only, sorted).
fn listing(dir: &PathBuf) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    names
}

#[test]
fn torn_write_never_touches_the_destination() {
    let dir = temp_dir("torn");
    let path = dir.join("artifact.json");
    persist::write_atomic(&path, "generation-one").expect("clean write");

    let _armed = arm(
        0x7E54,
        &[(FP_WRITE_ATOMIC, SiteSpec::once(FailAction::Torn))],
    );
    let next = "generation-two-considerably-longer";
    let err = persist::write_atomic(&path, next).expect_err("torn write fails the call");
    assert!(
        err.to_string().contains(FP_WRITE_ATOMIC),
        "error names the site: {err}"
    );

    // The destination is byte-for-byte the old version…
    assert_eq!(std::fs::read_to_string(&path).unwrap(), "generation-one");
    // …and exactly one half-written temp was left behind, named with
    // this (live) writer's pid so a debris sweep would spare it.
    let temps: Vec<String> = listing(&dir)
        .into_iter()
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert_eq!(temps.len(), 1, "one torn temp: {temps:?}");
    assert!(
        temps[0].contains(&format!(".{}.", std::process::id())),
        "temp {} embeds the writer pid",
        temps[0]
    );
    let torn = std::fs::read_to_string(dir.join(&temps[0])).unwrap();
    assert_eq!(torn.as_bytes(), &next.as_bytes()[..next.len() / 2]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn commit_entry_crash_is_a_clean_miss_and_a_refit_heals_it() {
    let root = temp_dir("commit_entry");
    let registry = Registry::open(&root).expect("open registry");
    let spec = quick_spec(0xA11CE);
    {
        let _armed = arm(2, &[(FP_COMMIT_ENTRY, SiteSpec::once(FailAction::Error))]);
        let err = registry
            .get_or_fit_study(&spec)
            .expect_err("commit dies between object and entry");
        assert!(
            err.to_string().contains(FP_COMMIT_ENTRY),
            "error names the site: {err}"
        );
    }
    // Object landed, entry never did: readers see a clean miss, and the
    // orphaned object is unreferenced debris, not corruption.
    assert!(
        registry
            .get(&spec.key(), spec.fingerprint())
            .expect("read after crash")
            .is_none(),
        "a crashed commit must be a clean miss, never a torn entry"
    );
    assert_eq!(listing(&root.join("entries")), Vec::<String>::new());
    assert_eq!(listing(&root.join("objects")).len(), 1, "orphan object");

    // The refit heals: same seed, same campaign, same content hash — the
    // orphan is re-adopted rather than duplicated.
    let outcome = registry.get_or_fit_study(&spec).expect("refit succeeds");
    assert!(!outcome.warm, "nothing durable existed, so this was a fit");
    assert!(registry
        .get(&spec.key(), spec.fingerprint())
        .expect("read after refit")
        .is_some());
    assert_eq!(listing(&root.join("objects")).len(), 1, "no duplicate");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn commit_object_failure_leaves_nothing_durable() {
    let root = temp_dir("commit_object");
    let registry = Registry::open(&root).expect("open registry");
    let spec = quick_spec(0xB0B);
    {
        let _armed = arm(3, &[(FP_COMMIT_OBJECT, SiteSpec::once(FailAction::Error))]);
        let err = registry
            .get_or_fit_study(&spec)
            .expect_err("commit dies before the object write");
        assert!(
            err.to_string().contains(FP_COMMIT_OBJECT),
            "error names the site: {err}"
        );
    }
    assert_eq!(listing(&root.join("entries")), Vec::<String>::new());
    assert_eq!(listing(&root.join("objects")), Vec::<String>::new());

    let outcome = registry.get_or_fit_study(&spec).expect("refit succeeds");
    assert!(!outcome.warm);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn injected_error_pattern_replays_identically_across_reinstalls() {
    let dir = temp_dir("replay");
    let spec = SiteSpec {
        action: FailAction::Error,
        probability: 0.4,
        max_fires: None,
    };
    let run = || -> Vec<bool> {
        let _armed = arm(0xBEEF, &[(FP_WRITE_ATOMIC, spec)]);
        (0..60)
            .map(|i| persist::write_atomic(&dir.join(format!("f{i}")), "x").is_err())
            .collect()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same seed, same injected-failure pattern");
    let failures = first.iter().filter(|f| **f).count();
    assert!(
        (5..=50).contains(&failures),
        "p=0.4 over 60 writes fired {failures} times"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Builds (a no-op when fresh) and locates the worker binary. Always
/// goes through cargo: `cargo test -p archpredict` does not track the
/// worker as a dependency, so a previously built binary may predate the
/// sources this test asserts against.
fn worker_binary() -> &'static PathBuf {
    static BINARY: OnceLock<PathBuf> = OnceLock::new();
    BINARY.get_or_init(|| {
        let mut build = std::process::Command::new(env!("CARGO"));
        build.args(["build", "-p", "archpredict-worker"]);
        if !cfg!(debug_assertions) {
            build.arg("--release");
        }
        let status = build.status().expect("run cargo build for the worker");
        assert!(status.success(), "building archpredict-worker failed");
        locate_worker_binary().expect("worker binary after building it")
    })
}

#[test]
fn span_send_fault_respawns_the_worker_and_heals_the_batch() {
    worker_binary();
    let spec = WorkerSpec::Sleepy {
        study: Study::MemorySystem,
        sleep_micros: 0,
        crash_index: None,
        nan_index: None,
    };
    let space = spec.space();
    let indices: Vec<usize> = (0..40).map(|i| (i * 389) % space.size()).collect();

    // Undisturbed in-process reference.
    let mut reference_pool =
        ProcessPoolOracle::with_workers(spec.clone(), 0).expect("in-process pool");
    reference_pool.set_span_timeout(None);
    let mut stats = SimStats::default();
    let reference: Vec<u64> = reference_pool
        .evaluate_batch(&space, &indices, &mut stats)
        .iter()
        .map(|r| r.expect("sleepy evaluator never fails").to_bits())
        .collect();

    // The failpoint is checked in *this* process (the coordinator); the
    // injected send failure looks like a worker that died idle, so the
    // pool must reap, respawn, and retry the same span — and the healed
    // batch must be bit-identical.
    let _armed = arm(9, &[(FP_SPAN_SEND, SiteSpec::once(FailAction::Error))]);
    let mut pool = ProcessPoolOracle::with_workers(spec, 1).expect("1-worker pool");
    pool.set_span_timeout(None);
    let mut stats = SimStats::default();
    let healed: Vec<u64> = pool
        .evaluate_batch(&space, &indices, &mut stats)
        .iter()
        .map(|r| r.expect("send fault heals transparently").to_bits())
        .collect();
    assert_eq!(healed, reference, "healed batch diverged");
    assert!(pool.respawns() >= 1, "the faulted send must cost a respawn");
}
