//! Registry integration: artifacts round-trip bit-for-bit, concurrent
//! callers collapse into one fit, and stale artifacts fail loudly
//! instead of mispredicting. (Crash-mid-commit coverage lives in
//! tests/failpoints.rs, driven by the deterministic failpoint layer.)

use archpredict::registry::{ModelKey, Registry, RegistryError};
use archpredict::{DesignSpace, Param};
use archpredict_ann::train::train_multi_network;
use archpredict_ann::{fit_ensemble, Dataset, Ensemble, Sample, TrainConfig};
use archpredict_stats::json::Value;
use archpredict_stats::rng::Xoshiro256;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn temp_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("archpredict_regtest_{tag}_{}", std::process::id()))
}

fn tiny_space() -> DesignSpace {
    DesignSpace::new(vec![
        Param::cardinal("a", [1.0, 2.0, 4.0, 8.0]),
        Param::cardinal("b", [1.0, 2.0, 3.0]),
        Param::boolean("c"),
    ])
    .expect("valid space")
}

/// A fast synthetic ensemble fit: no simulation, a handful of epochs.
fn tiny_ensemble(space: &DesignSpace, seed: u64) -> Ensemble {
    let data: Dataset = (0..space.size())
        .map(|i| {
            let f = space.encode(&space.point(i));
            let t = 0.5 + 0.3 * f[0] + 0.2 * f[1] * f[2];
            Sample::new(f, t)
        })
        .collect();
    let config = TrainConfig {
        max_epochs: 30,
        ..TrainConfig::default()
    };
    fit_ensemble(&data, 5, &config, seed).ensemble
}

#[test]
fn ensemble_round_trip_is_bit_identical() {
    let root = temp_root("roundtrip");
    let space = tiny_space();
    let fingerprint = space.fingerprint();
    let key = ModelKey::new("test", "plain", "toy", 0xABCD, 24);

    let registry = Registry::open(&root).unwrap();
    let fitted = registry
        .get_or_fit(&key, fingerprint, || {
            Ok((
                tiny_ensemble(&space, 1),
                Value::Object(vec![("samples".into(), Value::num(24.0))]),
            ))
        })
        .unwrap();
    assert!(!fitted.warm);
    assert_eq!(registry.fits_performed(), 1);

    // A fresh instance (fresh process, in spirit) loads the artifact and
    // predicts bit-identically to the in-memory ensemble at every point.
    let reopened = Registry::open(&root).unwrap();
    let warm = reopened.get(&key, fingerprint).unwrap().expect("warm hit");
    assert!(warm.warm);
    assert_eq!(warm.payload.get("samples").unwrap().as_usize().unwrap(), 24);
    for i in 0..space.size() {
        let x = space.encode(&space.point(i));
        assert_eq!(
            fitted.model.predict(&x).to_bits(),
            warm.model.predict(&x).to_bits(),
            "prediction diverged at point {i}"
        );
    }
    assert_eq!(reopened.fits_performed(), 0);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn multi_model_round_trip_is_bit_identical() {
    let root = temp_root("multi");
    let space = tiny_space();
    let fingerprint = space.fingerprint() ^ 0x4EAD;
    let key = ModelKey::new("test", "multitask", "toy", 7, 24);

    let rows: Vec<(Vec<f64>, Vec<f64>)> = (0..space.size())
        .map(|i| {
            let f = space.encode(&space.point(i));
            let t = vec![0.5 + 0.3 * f[0], 2.0 - f[1]];
            (f, t)
        })
        .collect();
    let config = TrainConfig {
        max_epochs: 30,
        ..TrainConfig::default()
    };

    let registry = Registry::open(&root).unwrap();
    let fitted = registry
        .get_or_fit_multi(&key, fingerprint, || {
            fn pairs(r: &[(Vec<f64>, Vec<f64>)]) -> Vec<(&[f64], &[f64])> {
                r.iter()
                    .map(|(f, t)| (f.as_slice(), t.as_slice()))
                    .collect()
            }
            let (train, es) = rows.split_at(rows.len() - 4);
            let mut rng = Xoshiro256::seed_from(7);
            let model = train_multi_network(&pairs(train), &pairs(es), 0, &config, &mut rng);
            Ok((model, Value::Null))
        })
        .unwrap();
    assert!(!fitted.warm);

    let warm = Registry::open(&root)
        .unwrap()
        .get_multi(&key, fingerprint)
        .unwrap()
        .expect("warm hit");
    for i in 0..space.size() {
        let x = space.encode(&space.point(i));
        let (a, b) = (fitted.model.predict_all(&x), warm.model.predict_all(&x));
        assert_eq!(a.len(), b.len());
        for (head, (p, q)) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                p.to_bits(),
                q.to_bits(),
                "head {head} diverged at point {i}"
            );
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn concurrent_get_or_fit_runs_exactly_one_fit() {
    let root = temp_root("concurrent");
    let space = tiny_space();
    let fingerprint = space.fingerprint();
    let key = ModelKey::new("test", "plain", "race", 3, 24);
    let registry = Arc::new(Registry::open(&root).unwrap());
    let fit_calls = Arc::new(AtomicUsize::new(0));

    let outcomes: Vec<_> = std::thread::scope(|scope| {
        (0..8)
            .map(|_| {
                let registry = Arc::clone(&registry);
                let fit_calls = Arc::clone(&fit_calls);
                let space = &space;
                let key = &key;
                scope.spawn(move || {
                    registry
                        .get_or_fit(key, fingerprint, || {
                            fit_calls.fetch_add(1, Ordering::SeqCst);
                            Ok((tiny_ensemble(space, 9), Value::Null))
                        })
                        .unwrap()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });

    assert_eq!(fit_calls.load(Ordering::SeqCst), 1, "exactly one fit");
    assert_eq!(registry.fits_performed(), 1);
    assert_eq!(outcomes.iter().filter(|o| !o.warm).count(), 1);
    let probe = space.encode(&space.point(0));
    let bits = outcomes[0].model.predict(&probe).to_bits();
    for o in &outcomes {
        assert_eq!(o.model.predict(&probe).to_bits(), bits);
    }
    std::fs::remove_dir_all(&root).ok();
}

/// Regression test for the cross-key commit race: the index used to be
/// one manifest file merged read-modify-write, so two concurrent fits of
/// *different* keys could interleave and the last writer silently
/// dropped the other's entry. With one atomically-written entry file per
/// key, every concurrent commit must survive.
#[test]
fn concurrent_commits_of_distinct_keys_all_survive() {
    let root = temp_root("crosskey");
    let space = tiny_space();
    let fingerprint = space.fingerprint();
    let registry = Arc::new(Registry::open(&root).unwrap());
    let keys: Vec<ModelKey> = (0..8)
        .map(|i| ModelKey::new("test", "plain", format!("app{i}"), i as u64, 24))
        .collect();

    std::thread::scope(|scope| {
        for key in &keys {
            let registry = Arc::clone(&registry);
            let space = &space;
            scope.spawn(move || {
                registry
                    .get_or_fit(key, fingerprint, || {
                        Ok((tiny_ensemble(space, key.seed), Value::Null))
                    })
                    .unwrap();
            });
        }
    });

    // Every key's entry survived every other key's concurrent commit.
    let reopened = Registry::open(&root).unwrap();
    for key in &keys {
        assert!(
            reopened.get(key, fingerprint).unwrap().is_some(),
            "entry for {key} was clobbered by a concurrent commit"
        );
    }
    std::fs::remove_dir_all(&root).ok();
}

// The kill-9-between-the-two-commit-writes test lives in
// tests/failpoints.rs now: the failpoint layer drives the crash through
// the real `get_or_fit` path instead of a bespoke test hook.

#[test]
fn stale_fingerprint_fails_loudly_instead_of_mispredicting() {
    let root = temp_root("stale");
    let space = tiny_space();
    let fingerprint = space.fingerprint();
    let key = ModelKey::new("test", "plain", "stale", 2, 24);

    let registry = Registry::open(&root).unwrap();
    registry
        .get_or_fit(&key, fingerprint, || {
            Ok((tiny_ensemble(&space, 2), Value::Null))
        })
        .unwrap();

    // The space or encoding changed: the lookup must error, not serve the
    // old model.
    match registry.get(&key, fingerprint ^ 1) {
        Err(RegistryError::Incompatible(msg)) => {
            assert!(msg.contains("refit"), "actionable message: {msg}")
        }
        other => panic!("expected Incompatible, got {other:?}"),
    }
    std::fs::remove_dir_all(&root).ok();
}
